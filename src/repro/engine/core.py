"""The execution engine: batched, cached, parallel model evaluation.

:class:`ExecutionEngine` is the single funnel every evaluation path uses to
call a language model.  Given a sequence of
:class:`~repro.engine.requests.DetectionRequest`, it

1. groups requests by (model instance, strategy, scoring mode) and splits
   each group into chunks — sized by ``batch_size``, optionally *adapted*
   per group by the cost model (smaller chunks for slow models, larger for
   fast/cached ones) and ordered longest-processing-time first (LPT) so
   expensive groups never become a straggler tail;
2. dispatches the chunks over the configured executor (serial, thread
   pool, process pool or async — see :mod:`repro.engine.executors`) in one
   of two modes: ``"ordered"`` uses the blocking order-preserving ``map``,
   ``"dynamic"`` (the default) streams ``(index, result)`` pairs through
   ``map_unordered`` and merges each chunk the moment it completes.  On an
   **async-native** executor (``native_async``, the ``AsyncExecutor``) the
   chunk work item is a coroutine: model I/O is awaited on the event loop
   under the executor's ``max_inflight`` semaphore, and a micro-batch
   coalescer (:mod:`repro.engine.coalesce`) merges concurrent same-(model,
   strategy) misses into single ``generate_batch_async`` wire calls;
3. inside a chunk, renders all prompts via
   :func:`~repro.prompting.chains.run_strategy_batch`, satisfies what it can
   from the response cache and sends only the misses to the model's
   ``generate_batch``;
4. scores each response (:func:`~repro.engine.requests.score_response`) and
   reassembles the results in the original request order — dynamic dispatch
   writes each scored chunk straight into its slots of the result store, so
   completion order never leaks into output order.

Every chunk's elapsed time is fed back into the engine's
:class:`~repro.engine.costmodel.CostModel` and the per-(model, strategy)
telemetry groups, so a long-lived engine schedules its *next* run with
measured latencies.

**Tail-latency control** builds on dynamic dispatch and the cost model:
with ``speculate=True`` the dispatcher (:meth:`_dispatch_speculative`)
watches in-flight chunks against the cost model's p95 per-chunk estimate
and races a duplicate of any straggler into idle capacity — first
completion wins, the loser is cancelled or its result dropped, and only
the winner feeds results, cache and telemetry, so output stays
bit-identical.  With ``deadline=SECONDS`` the planner
(:meth:`_plan_deadline`) sheds the lowest-value chunks when the predicted
makespan exceeds the budget; shed requests surface as explicit ``skipped``
results, never silently.

For *distributed* executors (``executor.distributed`` is true, e.g. the
process pool) the work item crossing the boundary must be picklable, so the
engine ships self-contained chunk payloads to the module-level
:func:`_score_chunk_payload` worker, then merges the returned entry deltas
and telemetry back in the parent.  The cache snapshot is **broadcast once
per run** through :mod:`repro.engine.snapshot`: the parent encodes it once
— by default into a shared-memory block workers attach read-only and
binary-search in place (zero per-worker deserialisation, one physical copy
per host), with a pickle-temp-file fallback — and every payload carries
only the small ``(kind, locator, token)`` reference, memoised per worker
per run.  Parent-side cost is therefore O(entries) per run, not
O(chunks × entries), and worker-side cost is an attach, not a copy.

**Fault tolerance** (``retries``, ``journal``, per-model circuit breakers —
see :mod:`repro.engine.faults`): with ``retries > 0`` chunks dispatch
through :meth:`_dispatch_retry` on the executor's ``submit_stream`` seam —
a failed chunk re-enters the dispatcher after a deterministic exponential
backoff instead of cancelling unrelated work, per-model breakers open
after consecutive failures and route affected chunks to the cascade's
next-cheaper tier (when a :class:`~repro.engine.cascade.CascadePolicy` is
configured) or surface them as explicit ``RunResult(failed=True)`` entries
in position, and a ``journal`` checkpoint lets an interrupted run resume
skipping already-completed work.  The run always completes with partial
results instead of dying; confusion counts exclude failed entries the same
way they exclude deadline-shed ones.

Because scoring preserves request order and the simulated models are
deterministic functions of (model, strategy, code), the engine's output is
bit-identical across executors, dispatch modes, chunk sizings and cache
states — the refactor is purely about *how* the calls run, never about
*what* they return.  (With a non-deterministic model the cache pins the
first response per prompt.)
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import heapq
import itertools
import statistics
import time
from collections import OrderedDict, deque
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
)

from repro.engine.cache import ResponseCache, cache_key
from repro.engine.cascade import CascadePolicy, CascadeRouter
from repro.engine.coalesce import MicroBatchCoalescer
from repro.engine.costmodel import CostModel
from repro.engine.executors import SerialExecutor, create_executor
from repro.engine.faults import (
    DEFAULT_BREAKER_COOLDOWN_S,
    DEFAULT_BREAKER_THRESHOLD,
    DEFAULT_RETRY_BASE_MS,
    BreakerBoard,
    MalformedResponseError,
    RetryPolicy,
    RunJournal,
    chunk_journal_key,
    is_retryable,
    request_key,
)
from repro.engine.requests import (
    DetectionRequest,
    RunResult,
    RunResultStore,
    failed_result,
    score_response,
    shed_result,
)
from repro.engine.snapshot import (
    SNAPSHOT_TRANSPORTS,
    SnapshotPayloadRef,
    _WORKER_SNAPSHOTS as _worker_snapshot_memo,
    load_snapshot,
    publish_snapshot,
    retire_snapshot,
)
from repro.engine.telemetry import EngineTelemetry
from repro.prompting.chains import run_strategy_batch, run_strategy_batch_async

__all__ = [
    "DEFAULT_STREAM_WINDOW",
    "DISPATCH_MODES",
    "ExecutionEngine",
    "resolve_engine",
]

T = TypeVar("T")
R = TypeVar("R")

#: Valid values for ``ExecutionEngine(dispatch=...)`` / the CLI's ``--dispatch``.
DISPATCH_MODES = ("ordered", "dynamic")

#: The quantile of a group's per-request latency distribution that a chunk
#: must overshoot (scaled by ``speculate_after``) before a duplicate copy is
#: launched — speculation keys on the *tail* of the distribution, so a
#: naturally noisy group needs a larger excursion than a steady one.
SPECULATION_QUANTILE = 0.95

#: How often the speculative dispatcher re-checks in-flight chunks against
#: their thresholds (seconds).  Engine attribute ``speculation_poll_s``
#: overrides it per instance (benchmarks/tests tighten it).
DEFAULT_SPECULATION_POLL_S = 0.01

#: Default window size (requests resident at once) for
#: :meth:`ExecutionEngine.run_streaming` — large enough that chunking, LPT
#: ordering and adaptive sizing see a representative population, small
#: enough that peak RSS stays O(window) on million-record corpora.
DEFAULT_STREAM_WINDOW = 2048

_IndexedRequest = Tuple[int, DetectionRequest]

#: What executing one chunk produces in-process: the scored results plus
#: hit/miss/model-call counters and the chunk's wall time.
_ChunkOutcome = Tuple[List[Tuple[int, RunResult]], Dict[str, int], float]

#: What a distributed chunk worker sends back: a chunk outcome plus the
#: cache entry delta the parent must merge.
_DistributedOutcome = Tuple[List[Tuple[int, RunResult]], Dict[str, str], Dict[str, int], float]

#: A published cache snapshot reference crossing the process boundary:
#: ``(kind, shm-name-or-path, unique broadcast token)``.
_SnapshotRef = SnapshotPayloadRef


def resolve_engine(engine: Optional["ExecutionEngine"]) -> "ExecutionEngine":
    """The caller's engine, or the default: a fresh serial, uncached one.

    The single definition of "no engine given" — every driver that accepts
    an optional ``engine`` funnels through here, so default semantics can
    never drift between the table drivers and the cross-validation loop.
    """
    return engine if engine is not None else ExecutionEngine()


def _partition_cached(
    prompts: Sequence[str],
    get_response: Callable[[str], Optional[str]],
) -> Tuple[List[Optional[str]], List[int]]:
    """Split a prompt batch into cache hits and miss positions.

    Returns ``(responses, miss_positions)`` where ``responses`` holds the
    cached response per prompt (``None`` at every miss position).  The one
    place hit/miss partitioning is implemented — the sync path, the
    async-native path and the distributed chunk worker all delegate here.
    """
    responses: List[Optional[str]] = [None] * len(prompts)
    miss_positions: List[int] = []
    for position, prompt in enumerate(prompts):
        cached = get_response(prompt)
        if cached is not None:
            responses[position] = cached
        else:
            miss_positions.append(position)
    return responses, miss_positions


def _require_batch_length(
    responses: List[str], n_prompts: int, method: str = "generate_batch"
) -> List[str]:
    """Reject a wrong-length model batch before it is consumed.

    Zipping a short response list against miss positions silently
    truncates: the unfilled positions keep their ``None`` placeholder and
    score garbage downstream.  Every site that consumes a
    ``generate_batch``/``generate_batch_async`` result funnels through this
    guard (the coalescer's ``_call`` applies the same contract), so a
    misbehaving adapter fails loudly at the wire instead.
    """
    if len(responses) != n_prompts:
        raise MalformedResponseError(
            f"{method} returned {len(responses)} responses for {n_prompts} prompts"
        )
    return responses


def _generate_with_cache(
    model,
    prompts: Sequence[str],
    get_response: Callable[[str], Optional[str]],
    put_response: Callable[[str, str], None],
) -> Tuple[List[str], int, int]:
    """The one implementation of cache-aware batched generation.

    Satisfies what it can via ``get_response`` (``None`` = miss), sends
    only the misses to ``model.generate_batch`` in one call, stores fresh
    responses via ``put_response`` and returns ``(responses, hits,
    misses)`` in prompt order.  Both the in-process engine path and the
    distributed chunk worker delegate here, so miss handling can never
    drift between executors.
    """
    prompts = list(prompts)
    responses, miss_positions = _partition_cached(prompts, get_response)
    if miss_positions:
        generated = _require_batch_length(
            list(model.generate_batch([prompts[i] for i in miss_positions])),
            len(miss_positions),
        )
        for position, response in zip(miss_positions, generated):
            responses[position] = response
            put_response(prompts[position], response)
    return responses, len(prompts) - len(miss_positions), len(miss_positions)  # type: ignore[return-value]


# ---------------------------------------------------------------------------
# broadcast-once cache shipping (the process-backend hot path)
# ---------------------------------------------------------------------------
#
# The mechanics live in :mod:`repro.engine.snapshot`: the parent publishes
# the warm cache once per run — by default into a shared-memory block whose
# compact binary layout workers attach and binary-search *in place*, with
# the pickle-temp-file transport as explicit choice or automatic fallback.
# These module-level aliases are the engine's seam (tests monkeypatch
# ``_publish_snapshot`` here) and keep ``_score_chunk_payload`` self-contained
# for pickling.

_publish_snapshot = publish_snapshot
_retire_snapshot = retire_snapshot
_load_published_snapshot = load_snapshot
#: Worker-side memo (same object as :data:`repro.engine.snapshot._WORKER_SNAPSHOTS`).
_WORKER_SNAPSHOTS = _worker_snapshot_memo


def _score_chunk_payload(
    payload: Tuple[Sequence[_IndexedRequest], Optional[_SnapshotRef]],
) -> _DistributedOutcome:
    """Score one chunk in a worker process (no shared state with the parent).

    ``payload`` is ``(chunk, snapshot_ref)`` where ``snapshot_ref`` points
    at the run's published read-only cache snapshot (or is ``None`` when
    caching is off).  The worker cannot mutate the parent cache, so it
    returns the entries it generated alongside hit/miss/model-call counts
    and its wall time; the parent merges them as each chunk completes.
    Chunks from the same run cannot see each other's fresh entries — with
    deterministic models that only costs duplicate calls, never changes a
    response.
    """
    chunk, snapshot_ref = payload
    cache_entries, loaded_kind = _load_published_snapshot(snapshot_ref)
    # Time only the chunk's own work: the one-time snapshot attach/load
    # above must not be charged to this (model, strategy) group's cost
    # estimate, or the first chunk per worker would skew the EWMA.
    start = time.perf_counter()
    model = chunk[0][1].model
    strategy = chunk[0][1].strategy
    identity = getattr(model, "cache_identity", model.name)
    new_entries: Dict[str, str] = {}
    counters = {
        "hits": 0,
        "misses": 0,
        "calls": 0,
        "wire": 0,
        # First genuine shm attach in this worker for this run's token;
        # the parent folds it into telemetry's `shm_attach`.
        "attach": 1 if loaded_kind == "shm" else 0,
    }

    def get_response(prompt: str) -> Optional[str]:
        key = cache_key(identity, prompt)
        return cache_entries.get(key, new_entries.get(key))  # type: ignore[union-attr]

    def put_response(prompt: str, response: str) -> None:
        new_entries[cache_key(identity, prompt)] = response

    def generate_many(prompts: Sequence[str]) -> List[str]:
        if cache_entries is None:
            counters["calls"] += len(prompts)
            counters["wire"] += 1
            return _require_batch_length(
                list(model.generate_batch(prompts)), len(prompts)
            )
        responses, hits, misses = _generate_with_cache(
            model, prompts, get_response, put_response
        )
        counters["hits"] += hits
        counters["misses"] += misses
        counters["calls"] += misses
        if misses:
            counters["wire"] += 1
        return responses

    responses = run_strategy_batch(generate_many, strategy, [r.code for _, r in chunk])
    scored = [
        (index, score_response(request, response))
        for (index, request), response in zip(chunk, responses)
    ]
    return scored, new_entries, counters, time.perf_counter() - start


class ExecutionEngine:
    """Runs batches of detection requests through an executor and a cache.

    Parameters
    ----------
    executor:
        An object with order-preserving ``map(fn, items)`` (and, for
        dynamic dispatch, completion-order ``map_unordered``); defaults to
        :class:`~repro.engine.executors.SerialExecutor`.
    jobs:
        Shorthand: build the executor via
        :func:`~repro.engine.executors.create_executor` with this width.
    executor_kind:
        Backend name (``"serial"``, ``"thread"``, ``"process"``,
        ``"async"`` or anything registered); combines with ``jobs``.
        Mutually exclusive with ``executor``.
    cache:
        A :class:`~repro.engine.cache.ResponseCache`, or ``None`` to call
        the model for every request.
    batch_size:
        Baseline requests per chunk; one chunk is one executor work item
        and at most one ``generate_batch`` call per chain phase.  With
        ``adaptive_batching`` the cost model scales each group's actual
        chunk size around this baseline (within ``[batch_size / 4,
        batch_size * 4]``, never below 1).
    dispatch:
        ``"dynamic"`` (default) merges chunks in completion order via the
        executor's ``map_unordered`` — no chunk waits behind a slower one
        at the merge barrier; ``"ordered"`` is the reference path through
        blocking ``map``.  Output is bit-identical either way.
    lpt:
        Dispatch chunks longest-processing-time first, using the cost
        model's estimates.  Groups never observed keep plan order.
    adaptive_batching:
        Let the cost model shrink chunk sizes for slow groups and grow
        them for fast ones.  Off: every chunk is exactly ``batch_size``.
    cost_model:
        A :class:`~repro.engine.costmodel.CostModel` to share/persist;
        defaults to a fresh in-memory one.  It is always fed with observed
        chunk latencies, even when ``lpt`` and ``adaptive_batching`` are
        off.
    max_inflight:
        Async-native path only: maximum concurrently in-flight chunk
        coroutines (the :class:`~repro.engine.executors.AsyncExecutor`
        semaphore width).  ``None`` keeps the executor's default (its
        ``jobs``).  Only valid with ``jobs``/``executor_kind``; pass it to
        the executor directly when constructing one yourself.
    coalesce:
        Async-native path only: merge concurrent ``generate_batch_async``
        calls for the same (model, strategy) into one model call through a
        :class:`~repro.engine.coalesce.MicroBatchCoalescer`.  Responses
        are bit-identical either way; coalescing only changes how many
        wire calls carry them.
    coalesce_window_s / coalesce_max_batch:
        The coalescer's collection window and early-flush prompt limit.
    speculate:
        Tail-latency control: during dynamic dispatch, watch in-flight
        chunks against the cost model's per-chunk quantile estimate and,
        when one overshoots its threshold while idle capacity exists,
        launch a duplicate copy — the first completion wins, the loser is
        cancelled (or its result dropped), and only the winner feeds the
        result store, cache, telemetry counters and cost model, so results
        stay bit-identical with speculation on or off.
    speculate_after:
        Straggler threshold multiplier: a chunk becomes a speculation
        candidate once its elapsed time exceeds ``speculate_after`` times
        the cost model's ``SPECULATION_QUANTILE`` (p95) estimate for the
        whole chunk.  Larger values speculate later (less duplicated
        work); smaller values race sooner.
    deadline:
        Per-run latency budget in seconds.  When the cost model predicts
        the run's makespan exceeds it, the planner sheds the
        lowest-value chunks (highest seconds-per-request — the fewest
        scored requests per second of budget) until the prediction fits.
        Shed requests surface as explicit ``RunResult`` skips
        (``skipped=True``), never silently dropped, and telemetry records
        predicted vs. actual makespan.  ``None`` (default) disables the
        budget entirely.
    snapshot_transport:
        How the warm-cache snapshot reaches distributed (process) workers:
        ``"shm"`` (default) broadcasts one shared-memory block every
        worker attaches and searches in place, falling back to the temp
        file where shared memory is unavailable; ``"file"`` pins the
        pickle-temp-file path explicitly (each worker deserialises a
        private copy).  Responses are bit-identical either way.
    stream_window:
        Default window size for :meth:`run_streaming`: at most this many
        requests are materialised, planned and in flight at once.  ``None``
        keeps :data:`DEFAULT_STREAM_WINDOW`.  Has no effect on :meth:`run`.
    cascade:
        A :class:`~repro.engine.cascade.CascadePolicy` to route every
        batch through cheap detector tiers first, escalating only
        low-confidence or disagreeing verdicts to the request's own model
        (see :mod:`repro.engine.cascade`).  ``None`` (default) keeps the
        single-tier behaviour bit-identical to an engine without the
        parameter.
    speculate_fallback:
        Cross-backend speculation: a callable mapping a straggling chunk's
        model to a *cheaper fallback model* (usually
        ``CascadePolicy.fallback_model``).  When set and ``speculate`` is
        on, the duplicate copy of an overdue chunk runs on the fallback
        model instead of re-running the same backend; whichever verdict
        lands first is merged under the existing exactly-once rules.
        ``None`` (default) keeps duplicates same-backend — bit-identical
        responses, speculation on or off.
    retries:
        Per-chunk retry budget (default 0 = the historical fail-fast
        behaviour).  With ``retries > 0`` chunks dispatch through the
        fault-tolerant :meth:`_dispatch_retry` loop: a retryable failure
        (see :func:`~repro.engine.faults.is_retryable`) re-enters the
        dispatcher after an exponential backoff with deterministic
        jitter instead of blocking a worker or cancelling unrelated
        chunks; exhausted retries surface as explicit
        ``RunResult(failed=True)`` entries in position, so the run
        completes with partial results instead of aborting.  The retry
        dispatcher always merges in completion order and supersedes
        speculation — results are bit-identical either way when no
        faults fire.
    retry_base_ms:
        First-retry backoff in milliseconds; doubles per attempt, scaled
        by a jitter factor seeded from the chunk identity (never the
        wall clock), so retried runs stay reproducible.
    breaker_threshold / breaker_cooldown_s:
        Per-model circuit breakers (active on the retry dispatcher,
        keyed on ``cache_identity``): after ``breaker_threshold``
        consecutive chunk failures on one model its breaker opens for
        ``breaker_cooldown_s`` seconds, then admits a single half-open
        probe.  While open, affected chunks route to the cascade's
        next-cheaper tier when a ``cascade`` policy is configured, else
        they fail explicitly without a model call.
    journal:
        Optional run-journal path (or a prebuilt
        :class:`~repro.engine.faults.RunJournal`): every completed
        chunk's outcomes are appended durably, and requests whose
        outcome is already journaled are answered from the journal
        without re-dispatching — an interrupted ``repro all`` resumes
        where it died.  ``None`` (default) disables checkpointing.
    """

    def __init__(
        self,
        *,
        executor=None,
        jobs: Optional[int] = None,
        executor_kind: Optional[str] = None,
        cache: Optional[ResponseCache] = None,
        batch_size: int = 32,
        telemetry: Optional[EngineTelemetry] = None,
        dispatch: str = "dynamic",
        lpt: bool = True,
        adaptive_batching: bool = True,
        cost_model: Optional[CostModel] = None,
        max_inflight: Optional[int] = None,
        coalesce: bool = True,
        coalesce_window_s: float = 0.002,
        coalesce_max_batch: int = 128,
        speculate: bool = False,
        speculate_after: float = 1.5,
        deadline: Optional[float] = None,
        snapshot_transport: str = "shm",
        stream_window: Optional[int] = None,
        cascade: Optional[CascadePolicy] = None,
        speculate_fallback: Optional[Callable] = None,
        retries: int = 0,
        retry_base_ms: float = DEFAULT_RETRY_BASE_MS,
        breaker_threshold: int = DEFAULT_BREAKER_THRESHOLD,
        breaker_cooldown_s: float = DEFAULT_BREAKER_COOLDOWN_S,
        journal=None,
    ) -> None:
        if executor is not None and (
            jobs is not None or executor_kind is not None or max_inflight is not None
        ):
            raise ValueError(
                "pass either executor or jobs/executor_kind/max_inflight, not both"
            )
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if max_inflight is not None and max_inflight < 1:
            raise ValueError("max_inflight must be >= 1 or None")
        if dispatch not in DISPATCH_MODES:
            raise ValueError(
                f"unknown dispatch mode {dispatch!r}; expected one of {DISPATCH_MODES}"
            )
        if speculate_after <= 0:
            raise ValueError("speculate_after must be > 0")
        if deadline is not None and deadline <= 0:
            raise ValueError("deadline must be > 0 seconds or None")
        if snapshot_transport not in SNAPSHOT_TRANSPORTS:
            raise ValueError(
                f"unknown snapshot transport {snapshot_transport!r}; "
                f"expected one of {SNAPSHOT_TRANSPORTS}"
            )
        if stream_window is not None and stream_window < 1:
            raise ValueError("stream_window must be >= 1 or None")
        if retries < 0:
            raise ValueError("retries must be >= 0")
        if retry_base_ms <= 0:
            raise ValueError("retry_base_ms must be > 0")
        if breaker_threshold < 1:
            raise ValueError("breaker_threshold must be >= 1")
        if breaker_cooldown_s < 0:
            raise ValueError("breaker_cooldown_s must be >= 0")
        self.executor = (
            executor
            if executor is not None
            else create_executor(jobs or 1, kind=executor_kind, max_inflight=max_inflight)
        )
        self.cache = cache
        self.batch_size = batch_size
        self.telemetry = telemetry or EngineTelemetry()
        self.dispatch = dispatch
        self.lpt = lpt
        self.adaptive_batching = adaptive_batching
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self.coalescer = (
            MicroBatchCoalescer(
                window_s=coalesce_window_s,
                max_batch=coalesce_max_batch,
                on_flush=self.telemetry.record_coalesce_flush,
            )
            if coalesce
            else None
        )
        self.speculate = speculate
        self.speculate_after = speculate_after
        self.speculate_fallback = speculate_fallback
        self.cascade = cascade
        self.cascade_router = (
            CascadeRouter(cascade, telemetry=self.telemetry) if cascade is not None else None
        )
        self.retry_policy = RetryPolicy(retries=retries, base_ms=retry_base_ms)
        self.breakers = BreakerBoard(
            threshold=breaker_threshold, cooldown_s=breaker_cooldown_s
        )
        if journal is None or isinstance(journal, RunJournal):
            self.journal = journal
        else:
            self.journal = RunJournal(journal)
        self.deadline = deadline
        self.snapshot_transport = snapshot_transport
        self.stream_window = stream_window if stream_window is not None else DEFAULT_STREAM_WINDOW
        #: Poll interval of the speculative dispatcher; tests and
        #: benchmarks tighten it to race short synthetic chunks.
        self.speculation_poll_s = DEFAULT_SPECULATION_POLL_S
        #: The deadline planner's post-shedding makespan prediction for the
        #: most recent run (0.0 when no deadline is set).
        self._predicted_makespan_s = 0.0
        #: Live/peak chunk coroutines; touched only on the executor's loop
        #: thread, so no lock is needed.
        self._inflight = 0
        self._inflight_peak = 0

    # -- the main entry point -------------------------------------------------------

    def run(self, requests: Iterable[DetectionRequest]) -> RunResultStore:
        """Execute every request; results come back in request order.

        With a ``deadline``, requests the planner shed to fit the budget
        come back as explicit ``skipped`` results in their original
        positions — the store always holds exactly one result per request.
        """
        indexed: List[_IndexedRequest] = list(enumerate(requests))
        start = time.perf_counter()
        results, shed = self._execute_indexed(indexed)
        elapsed = time.perf_counter() - start
        self.telemetry.record_run(elapsed)
        if self.deadline is not None:
            self.telemetry.record_deadline(
                budget_s=self.deadline,
                predicted_s=self._predicted_makespan_s,
                actual_s=elapsed,
                shed=shed,
            )
        return RunResultStore(results)

    def run_counts(self, requests: Iterable[DetectionRequest]):
        """Shorthand: execute and fold straight into confusion counts."""
        return self.run(requests).confusion()

    def run_streaming(
        self,
        requests: Iterable[DetectionRequest],
        *,
        window: Optional[int] = None,
    ) -> Iterator[RunResult]:
        """Execute a request *stream* in bounded windows, yielding results.

        At most ``window`` requests (default: the engine's
        ``stream_window``) are pulled from the iterator, planned and
        dispatched at a time, so peak residency is O(window) no matter how
        large the stream — the producer is never run ahead of consumption by
        more than one window.  Within each window the full machinery of
        :meth:`run` applies unchanged: (model, strategy) grouping,
        cost-model adaptive chunk sizing, LPT ordering, dynamic
        completion-order merge, speculation and the response cache — and a
        ``deadline`` budgets each window independently.  Results are yielded
        in request order as each window drains; for the same requests the
        result sequence is element-identical to ``run(list(requests))``
        (modulo per-window deadline shedding, which a whole-run budget
        cannot match window for window).

        Distributed executors re-broadcast the cache snapshot per window, so
        later windows see entries earlier windows populated.
        """
        size = self.stream_window if window is None else window
        if size < 1:
            raise ValueError("stream window must be >= 1")
        return self._stream_windows(iter(requests), size)

    def _stream_windows(
        self, iterator: Iterator[DetectionRequest], size: int
    ) -> Iterator[RunResult]:
        start = time.perf_counter()
        try:
            while True:
                batch: List[_IndexedRequest] = list(
                    enumerate(itertools.islice(iterator, size))
                )
                if not batch:
                    break
                window_start = time.perf_counter()
                results, shed = self._execute_indexed(batch)
                if self.deadline is not None:
                    self.telemetry.record_deadline(
                        budget_s=self.deadline,
                        predicted_s=self._predicted_makespan_s,
                        actual_s=time.perf_counter() - window_start,
                        shed=shed,
                    )
                yield from results
        finally:
            # One wall-clock observation per streamed run, recorded even if
            # the consumer abandons the stream early.
            self.telemetry.record_run(time.perf_counter() - start)

    def run_streaming_counts(
        self,
        requests: Iterable[DetectionRequest],
        *,
        window: Optional[int] = None,
    ):
        """Shorthand: stream-execute and fold into confusion counts.

        Nothing is buffered: each result is folded the moment its window
        drains, so this is the O(window)-memory counterpart of
        :meth:`run_counts`.
        """
        from repro.engine.requests import confusion_from_results

        return confusion_from_results(self.run_streaming(requests, window=window))

    def _execute_indexed(
        self, indexed: List[_IndexedRequest]
    ) -> Tuple[List[Optional[RunResult]], int]:
        """Plan and dispatch one materialised batch (a whole run or a window).

        Returns the results in request order plus the number of requests the
        deadline planner shed.  Shared by :meth:`run` (one batch = the whole
        run) and :meth:`run_streaming` (one batch per window).  With a
        cascade policy the batch routes down the tier ladder, each tier's
        sub-batch executing through :meth:`_execute_plain` — so streaming
        windows, LPT, speculation and the cache compose per tier unchanged.
        """
        if self.cascade_router is not None:
            return self.cascade_router.execute(indexed, self._execute_plain)
        return self._execute_plain(indexed)

    def _execute_plain(
        self, indexed: List[_IndexedRequest]
    ) -> Tuple[List[Optional[RunResult]], int]:
        """Single-tier plan/dispatch: journal-skip, chunk, shed, run, merge."""
        total = len(indexed)
        results: List[Optional[RunResult]] = [None] * total
        if self.journal is not None:
            indexed = self._journal_filter(indexed, results)
        chunks, shed = self._chunk(indexed)
        for index, request in shed:
            results[index] = shed_result(request)
        if getattr(self.executor, "distributed", False):
            self._run_distributed(chunks, results)
        else:
            self._run_local(chunks, results)
        self.telemetry.record_requests(total)
        self.telemetry.record_resident(total)
        return results, len(shed)

    # -- generic parallel map (non-LLM work, e.g. the Inspector baseline) ----------

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        """Run ``fn`` over ``items`` on the engine's executor, with telemetry.

        With a distributed executor, ``fn`` and every item must be picklable
        (a module-level function or a method of a picklable instance).
        """
        items = list(items)
        start = time.perf_counter()
        mapped = self.executor.map(fn, items)
        self.telemetry.record_requests(len(items))
        self.telemetry.record_run(time.perf_counter() - start)
        return mapped

    # -- lifecycle ------------------------------------------------------------------

    def close(self) -> None:
        """Release the executor's pool/loop (idempotent).

        The cache and cost model are left untouched — persistence stays an
        explicit decision (:meth:`ResponseCache.save` /
        :meth:`CostModel.save` / the pipeline's ``save_cache``).
        """
        close = getattr(self.executor, "close", None)
        if callable(close):
            close()

    def __enter__(self) -> "ExecutionEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- internals ------------------------------------------------------------------

    def _dynamic(self) -> bool:
        """Dynamic dispatch requested and supported by the executor."""
        return self.dispatch == "dynamic" and hasattr(self.executor, "map_unordered")

    def _async_native(self) -> bool:
        """Chunk work should run as coroutines awaiting model I/O natively."""
        return bool(getattr(self.executor, "native_async", False))

    def _capacity(self) -> int:
        """How many chunks the executor genuinely runs at once."""
        return max(
            1, int(getattr(self.executor, "capacity", getattr(self.executor, "jobs", 1)))
        )

    def _speculative(self) -> bool:
        """Speculative re-execution applies: dynamic dispatch, real parallelism."""
        return (
            self.speculate
            and self.dispatch == "dynamic"
            and hasattr(self.executor, "submit")
            and self._capacity() > 1
        )

    def _retrying(self) -> bool:
        """Fault-tolerant dispatch applies: a retry budget and a capable executor.

        The retry dispatcher supersedes both dispatch modes and
        speculation — it always merges in completion order, which is
        result-identical (positional fill) and the only shape that lets
        failed chunks re-enter the stream after backoff.
        """
        return self.retry_policy.enabled and hasattr(self.executor, "submit_stream")

    def _chunk(
        self, indexed: Sequence[_IndexedRequest]
    ) -> Tuple[List[List[_IndexedRequest]], List[_IndexedRequest]]:
        """Group, size, budget and order the work items for this run.

        1. group requests by (model, strategy, scoring) in plan order;
        2. size each group's chunks — ``batch_size``, or scaled by the cost
           model's per-request estimate relative to the median group so
           slow groups split finer and fast groups batch coarser;
        3. with a ``deadline``, shed the lowest-value chunks until the
           predicted makespan fits the budget (shed requests are returned,
           not dropped);
        4. order the chunks LPT (estimated chunk seconds, descending).
           Stable sort: without estimates the run keeps plan order exactly,
           so a cold engine behaves like the pre-cost-model engine.

        Returns ``(chunks, shed_requests)``.
        """
        groups: "OrderedDict[Tuple[int, str, str], List[_IndexedRequest]]" = OrderedDict()
        for index, request in indexed:
            key = (id(request.model), request.strategy.value, request.scoring)
            groups.setdefault(key, []).append((index, request))

        estimates: Dict[Tuple[int, str, str], Optional[float]] = {}
        for key, group in groups.items():
            model = group[0][1].model
            identity = getattr(model, "cache_identity", model.name)
            strategy_name = group[0][1].strategy.value
            # Cold-start fix for non-LLM tiers: a model advertising
            # cost_prior_s (the cascade's analyzer/inspector adapters)
            # prices as cheap-but-unknown instead of returning None and
            # blocking LPT ordering for the whole plan.  Observations
            # always shadow the prior (planning_estimate), and the prior
            # never feeds quantile_estimate — no speculation on groups
            # whose spread was never measured.
            prior = getattr(model, "cost_prior_s", None)
            if prior is not None:
                self.cost_model.set_prior(identity, strategy_name, prior)
            estimates[key] = self.cost_model.planning_estimate(identity, strategy_name)
        known = [cost for cost in estimates.values() if cost is not None and cost > 0]
        median_cost = statistics.median(known) if known else None

        chunks: List[List[_IndexedRequest]] = []
        chunk_costs: List[float] = []
        for key, group in groups.items():
            cost = estimates[key]
            size = self.batch_size
            if (
                self.adaptive_batching
                and cost is not None
                and cost > 0
                and median_cost is not None
            ):
                scaled = int(round(self.batch_size * median_cost / cost))
                size = max(1, max(self.batch_size // 4, min(self.batch_size * 4, scaled)))
            per_request = cost if cost is not None else (median_cost or 0.0)
            for start in range(0, len(group), size):
                chunk = group[start : start + size]
                chunks.append(chunk)
                chunk_costs.append(per_request * len(chunk))
        shed: List[_IndexedRequest] = []
        if self.deadline is not None:
            chunks, chunk_costs, shed = self._plan_deadline(chunks, chunk_costs)
        if self.lpt and known:
            order = sorted(range(len(chunks)), key=lambda i: -chunk_costs[i])
            chunks = [chunks[i] for i in order]
        return chunks, shed

    def _plan_deadline(
        self,
        chunks: List[List[_IndexedRequest]],
        chunk_costs: List[float],
    ) -> Tuple[List[List[_IndexedRequest]], List[float], List[_IndexedRequest]]:
        """Shed the lowest-value chunks until the predicted makespan fits.

        The makespan prediction is the list-scheduling lower bound
        ``max(total_cost / capacity, longest_chunk)``.  While it exceeds
        the budget, chunks are shed highest seconds-per-request first —
        the *cheapest-value* work: a slow group delivers the fewest scored
        requests per second of budget, so shedding it buys the most time
        per lost answer.  Chunks with no cost estimate are never shed
        (there is no evidence against them, and a cold engine must behave
        exactly like one without a deadline).
        """
        capacity = self._capacity()

        def predicted(keep: Sequence[bool]) -> float:
            costs = [cost for cost, kept in zip(chunk_costs, keep) if kept and cost > 0]
            if not costs:
                return 0.0
            return max(sum(costs) / capacity, max(costs))

        keep = [True] * len(chunks)
        prediction = predicted(keep)
        if prediction > self.deadline:
            shed_order = sorted(
                (i for i in range(len(chunks)) if chunk_costs[i] > 0),
                key=lambda i: -(chunk_costs[i] / len(chunks[i])),
            )
            # A shed only sticks if it lowers the prediction: when the
            # longest chunk dominates the bound, shedding anything else
            # discards answers for zero makespan gain.  Multiple passes,
            # because removing the dominant chunk can flip the binding
            # bound to total/capacity, making earlier-skipped sheds
            # worthwhile after all.
            progressed = True
            while prediction > self.deadline and progressed:
                progressed = False
                for i in shed_order:
                    if not keep[i]:
                        continue
                    keep[i] = False
                    candidate = predicted(keep)
                    if candidate < prediction:
                        prediction = candidate
                        progressed = True
                        if prediction <= self.deadline:
                            break
                    else:
                        keep[i] = True
        self._predicted_makespan_s = prediction
        if all(keep):
            return chunks, chunk_costs, []
        shed = [request for i, chunk in enumerate(chunks) if not keep[i] for request in chunk]
        kept_chunks = [chunk for i, chunk in enumerate(chunks) if keep[i]]
        kept_costs = [cost for i, cost in enumerate(chunk_costs) if keep[i]]
        return kept_chunks, kept_costs, shed

    def _run_local(
        self,
        chunks: Sequence[Sequence[_IndexedRequest]],
        results: List[Optional[RunResult]],
    ) -> None:
        """Execute chunks in-process and merge each outcome as it lands.

        With an async-native executor the chunk work item is a *coroutine*
        (:meth:`_run_chunk_async`): model I/O is awaited on the executor's
        event loop under its ``max_inflight`` semaphore, so concurrency is
        bounded by in-flight awaits, not worker threads.  Everything else —
        dispatch modes, merge order, scoring — is shared with the sync
        path, and results are bit-identical.
        """
        run_chunk = self._run_chunk
        if self._async_native():
            run_chunk = self._run_chunk_async
            self._inflight_peak = 0  # peak is per run; telemetry keeps the max
        if self._retrying():
            self._merge_retry_outcomes(
                run_chunk, chunks, results, make_item=lambda chunk: chunk
            )
            if self._async_native():
                self.telemetry.record_inflight_peak(self._inflight_peak)
            return
        fallback_chunks = self._fallback_chunks(chunks)
        if self._speculative():
            outcomes = self._dispatch_speculative(
                run_chunk, chunks, chunks, fallback_items=fallback_chunks
            )
        else:
            outcomes = self._plain_outcomes(run_chunk, chunks)
        for chunk_index, (scored, counters, elapsed), used_fallback in outcomes:
            for index, result in scored:
                results[index] = result
            chunk = (
                fallback_chunks[chunk_index] if used_fallback else chunks[chunk_index]
            )
            self._record_chunk(chunk, counters, elapsed)
            self._journal_record(chunks[chunk_index], scored)
        if self._async_native():
            self.telemetry.record_inflight_peak(self._inflight_peak)

    def _run_distributed(
        self,
        chunks: Sequence[Sequence[_IndexedRequest]],
        results: List[Optional[RunResult]],
    ) -> None:
        """Dispatch chunks over a process-boundary executor, merge the deltas.

        The cache snapshot is published exactly once per run — into a
        shared-memory block workers attach in place (or the temp-file
        fallback; see :mod:`repro.engine.snapshot`).  Payloads carry only
        its reference, so parent-side cost is O(entries) regardless of
        chunk count and worker-side cost is one attach, not a
        deserialisation.  The published block/file outlives every chunk
        (workers may load it lazily) and is retired when the run finishes
        — including on error; workers already attached keep their mapping
        alive, so retirement never races a merge.
        """
        published = (
            _publish_snapshot(
                self.cache.snapshot_records(), transport=self.snapshot_transport
            )
            if self.cache is not None
            else None
        )
        snapshot_ref = published.payload if published is not None else None
        if published is not None:
            self.telemetry.record_broadcast(published.nbytes)
        try:
            if self._retrying():
                self._merge_retry_outcomes(
                    _score_chunk_payload,
                    chunks,
                    results,
                    make_item=lambda chunk: (chunk, snapshot_ref),
                    distributed=True,
                )
                return
            payloads = [(chunk, snapshot_ref) for chunk in chunks]
            fallback_chunks = self._fallback_chunks(chunks)
            fallback_payloads = None
            if fallback_chunks is not None:
                fallback_payloads = [
                    (chunk, snapshot_ref) if chunk is not None else None
                    for chunk in fallback_chunks
                ]
            if self._speculative():
                outcomes = self._dispatch_speculative(
                    _score_chunk_payload, payloads, chunks, fallback_items=fallback_payloads
                )
            else:
                outcomes = self._plain_outcomes(_score_chunk_payload, payloads)
            for chunk_index, (scored, new_entries, counters, elapsed), used_fallback in outcomes:
                for index, result in scored:
                    results[index] = result
                chunk = (
                    fallback_chunks[chunk_index] if used_fallback else chunks[chunk_index]
                )
                self._merge_worker_entries(chunk, new_entries)
                self._record_chunk(chunk, counters, elapsed)
                self._journal_record(chunks[chunk_index], scored)
        finally:
            _retire_snapshot(published)

    # -- speculative re-execution (tail-latency control) ------------------------------

    def _plain_outcomes(self, fn: Callable, items: Sequence) -> Iterator:
        """Non-speculative dispatch, normalised to the 3-tuple outcome shape.

        ``(chunk_index, outcome, used_fallback)`` with ``used_fallback``
        always ``False`` — only the speculative dispatcher can merge a
        fallback-model copy.  The inner generator is closed explicitly so
        early abandonment (an exception mid-merge) cancels queued work just
        like consuming ``map_unordered`` directly would.
        """
        if self._dynamic():
            inner = self.executor.map_unordered(fn, items)
            try:
                for index, outcome in inner:
                    yield index, outcome, False
            finally:
                close = getattr(inner, "close", None)
                if callable(close):
                    close()
        else:
            for index, outcome in enumerate(self.executor.map(fn, items)):
                yield index, outcome, False

    def _fallback_chunks(
        self, chunks: Sequence[Sequence[_IndexedRequest]]
    ) -> Optional[List[Optional[List[_IndexedRequest]]]]:
        """Cross-backend speculation: per-chunk rewrites onto a cheaper model.

        When a ``speculate_fallback`` mapping is configured, each chunk gets
        a copy of its requests re-pointed at the fallback model (``None``
        when the chunk's model has nothing cheaper below it).  The copy is
        what a speculative duplicate submits — racing a different backend
        against the straggler instead of re-running the same one.
        """
        if self.speculate_fallback is None or not self._speculative():
            return None
        rewritten: List[Optional[List[_IndexedRequest]]] = []
        any_fallback = False
        for chunk in chunks:
            fallback_model = self.speculate_fallback(chunk[0][1].model)
            if fallback_model is None:
                rewritten.append(None)
                continue
            any_fallback = True
            rewritten.append(
                [
                    (index, dataclasses.replace(request, model=fallback_model))
                    for index, request in chunk
                ]
            )
        return rewritten if any_fallback else None

    def _chunk_threshold_s(self, chunk: Sequence[_IndexedRequest]) -> Optional[float]:
        """Elapsed seconds after which ``chunk`` counts as a straggler.

        ``speculate_after`` times the cost model's p95 per-request estimate
        for the chunk's group, scaled by the chunk length.  ``None`` when
        the group has never been observed — with no evidence of what
        "normal" looks like, a chunk can never be declared overdue.
        """
        request = chunk[0][1]
        identity = getattr(request.model, "cache_identity", request.model.name)
        quantile = self.cost_model.quantile_estimate(
            identity, request.strategy.value, SPECULATION_QUANTILE
        )
        if quantile is None or quantile <= 0:
            return None
        return self.speculate_after * quantile * len(chunk)

    def _dispatch_speculative(
        self,
        fn: Callable,
        items: Sequence,
        chunks: Sequence[Sequence[_IndexedRequest]],
        fallback_items: Optional[Sequence] = None,
    ) -> Iterator[Tuple[int, object, bool]]:
        """Completion-order dispatch that races duplicates of stragglers.

        Like ``map_unordered``, yields outcomes as work finishes — as
        ``(chunk_index, outcome, used_fallback)`` triples — but submission
        is *bounded*: at most ``capacity`` futures are in flight at once,
        so every in-flight future is genuinely running and its elapsed
        wall clock is attributable.  The dispatcher polls the in-flight
        set; when a chunk overshoots its cost-model threshold
        (:meth:`_chunk_threshold_s`) and idle capacity exists (pending
        work always fills slots first), it submits a duplicate of the same
        item.  The first copy to complete wins and is merged exactly once;
        the losing copy is cancelled (queued / async) or its eventual
        result dropped (already running on a thread/process worker), so
        the cache, telemetry counters and cost-model observations are
        never double-fed — results are bit-identical with speculation on
        or off.

        ``items`` is what gets submitted (chunks in-process, payloads for
        distributed executors); ``chunks`` supplies the per-chunk cost
        estimates.  ``fallback_items`` enables *cross-backend* speculation:
        when entry ``i`` is non-``None``, the duplicate of straggler ``i``
        submits that item instead — the same requests re-pointed at a
        cheaper tier's model — and a fallback win is flagged via
        ``used_fallback`` so the merge attributes cache identity, telemetry
        and cost observations to the model that actually answered.  A
        work-item exception propagates to the caller after every
        outstanding future is cancelled, matching the ``map_unordered``
        contract.
        """
        executor = self.executor
        capacity = self._capacity()
        thresholds = [self._chunk_threshold_s(chunk) for chunk in chunks]
        if all(threshold is None for threshold in thresholds):
            # Nothing can ever be declared overdue (cold cost model):
            # don't pay the polling loop — plain completion-order dispatch
            # is exactly equivalent.  The inner generator is closed
            # explicitly so the abandonment contract is preserved.
            inner = executor.map_unordered(fn, items)
            try:
                for index, outcome in inner:
                    yield index, outcome, False
            finally:
                close = getattr(inner, "close", None)
                if callable(close):
                    close()
            return
        pending = deque(range(len(items)))
        #: future -> (chunk index, is_duplicate, runs_on_fallback)
        inflight: Dict["concurrent.futures.Future", Tuple[int, bool, bool]] = {}
        started: Dict[int, float] = {}
        speculated: set = set()
        merged: set = set()
        try:
            # Stop as soon as every chunk has merged a winner: waiting for
            # losing copies to unwind would re-grow the very tail
            # speculation just cut off (a hung thread-pool loser cannot be
            # cancelled, only abandoned — the finally below drops it).
            while (pending or inflight) and len(merged) < len(items):
                while pending and len(inflight) < capacity:
                    index = pending.popleft()
                    inflight[executor.submit(fn, items[index])] = (index, False, False)
                    started[index] = time.perf_counter()
                done, _ = concurrent.futures.wait(
                    list(inflight),
                    timeout=self.speculation_poll_s,
                    return_when=concurrent.futures.FIRST_COMPLETED,
                )
                for future in done:
                    index, is_duplicate, on_fallback = inflight.pop(future)
                    if index in merged:
                        # The losing copy of a race that already resolved.
                        if is_duplicate:
                            self.telemetry.record_speculation(wasted=1)
                        continue
                    try:
                        outcome = future.result()
                    except BaseException:
                        # One copy of a racing pair failed while its
                        # sibling is still running: let the sibling decide
                        # the chunk — aborting here would make speculation
                        # *add* a failure mode on exactly the flaky
                        # backends it exists for.  With no sibling left,
                        # the error is the chunk's real outcome: re-raise
                        # (the finally cancels everything outstanding),
                        # matching the map_unordered contract.
                        if any(other == index for other, _, _ in inflight.values()):
                            if is_duplicate:
                                self.telemetry.record_speculation(wasted=1)
                            continue
                        raise
                    merged.add(index)
                    if is_duplicate:
                        self.telemetry.record_speculation(
                            won=1, fallback_won=1 if on_fallback else 0
                        )
                    for other, (other_index, _, _) in list(inflight.items()):
                        if other_index == index:
                            other.cancel()
                    yield index, outcome, on_fallback
                if pending:
                    # Freed slots belong to queued originals first; the
                    # top-of-loop refill takes them.  A duplicate jumping
                    # the queue would push first-copy work *behind*
                    # re-executed work and lengthen the makespan.
                    continue
                idle = capacity - len(inflight)
                if idle <= 0:
                    continue
                now = time.perf_counter()
                overdue: List[Tuple[float, int]] = []
                for index, is_duplicate, _on_fallback in inflight.values():
                    if is_duplicate or index in speculated or index in merged:
                        continue
                    threshold = thresholds[index]
                    if threshold is None:
                        continue
                    elapsed = now - started[index]
                    if elapsed > threshold:
                        overdue.append((elapsed / threshold, index))
                # Most overdue first: the worst straggler gets the first
                # idle slot.  One duplicate per chunk, ever.
                overdue.sort(reverse=True)
                for _, index in overdue[:idle]:
                    item = items[index]
                    on_fallback = False
                    if fallback_items is not None and fallback_items[index] is not None:
                        # Cross-backend: race the straggler against a
                        # cheaper tier instead of a same-backend twin.
                        item = fallback_items[index]
                        on_fallback = True
                    inflight[executor.submit(fn, item)] = (index, True, on_fallback)
                    speculated.add(index)
                    self.telemetry.record_speculation(
                        launched=1, fallback_launched=1 if on_fallback else 0
                    )
        finally:
            for future, (index, is_duplicate, _on_fallback) in inflight.items():
                future.cancel()
                if is_duplicate and index in merged:
                    # A duplicate abandoned because its original won.
                    self.telemetry.record_speculation(wasted=1)

    # -- fault-tolerant dispatch (retry/backoff, breakers, journal) -------------------

    def _merge_worker_entries(
        self, chunk: Sequence[_IndexedRequest], new_entries: Dict[str, str]
    ) -> None:
        """Fold a distributed worker's fresh cache entries into the parent."""
        if self.cache is None or not new_entries:
            return
        model = chunk[0][1].model
        identity = getattr(model, "cache_identity", model.name)
        for key, response in new_entries.items():
            self.cache.put_key(key, response, identity=identity)

    def _merge_retry_outcomes(
        self,
        fn: Callable,
        chunks: Sequence[Sequence[_IndexedRequest]],
        results: List[Optional[RunResult]],
        make_item: Callable,
        distributed: bool = False,
    ) -> None:
        """Drain the retry dispatcher and merge what it yields.

        A ``None`` outcome is a chunk the fault layer gave up on (retries
        exhausted, or its breaker open with nowhere to degrade to): every
        request gets an explicit positional ``failed`` result and nothing
        feeds the cache, telemetry counters, cost model or journal —
        mirroring how deadline-shed work is handled.
        """
        for chunk_index, outcome, executed_chunk in self._dispatch_retry(
            fn, chunks, make_item
        ):
            original = chunks[chunk_index]
            if outcome is None:
                for index, request in original:
                    results[index] = failed_result(request)
                self.telemetry.record_failed_requests(len(original))
                continue
            if distributed:
                scored, new_entries, counters, elapsed = outcome
                self._merge_worker_entries(executed_chunk, new_entries)
            else:
                scored, counters, elapsed = outcome
            for index, result in scored:
                results[index] = result
            # Telemetry/cost attribution goes to the model that actually
            # answered (a breaker may have rerouted the chunk); the journal
            # keys on the *original* requests so a resume finds them.
            self._record_chunk(executed_chunk, counters, elapsed)
            self._journal_record(original, scored)

    def _breaker_route(
        self, chunk: Sequence[_IndexedRequest]
    ) -> Optional[Sequence[_IndexedRequest]]:
        """Gate one chunk through its model's circuit breaker.

        Closed (or half-open admitting this probe): the chunk runs as-is.
        Open: walk down the cascade ladder (when a policy is configured)
        to the next-cheaper tier whose breaker admits the work and rewrite
        the requests onto that model.  ``None`` when every candidate is
        open or there is no ladder — the caller surfaces explicit failed
        results without a model call.
        """
        model = chunk[0][1].model
        current = model
        seen = set()
        while True:
            identity = getattr(current, "cache_identity", current.name)
            if identity in seen:  # ladder cycle guard
                return None
            seen.add(identity)
            if self.breakers.breaker(identity).allow():
                if current is model:
                    return chunk
                self.telemetry.record_breaker_reroutes(1)
                return [
                    (index, dataclasses.replace(request, model=current))
                    for index, request in chunk
                ]
            if self.cascade is None:
                return None
            current = self.cascade.fallback_model(current)
            if current is None:
                return None

    def _dispatch_retry(
        self,
        fn: Callable,
        chunks: Sequence[Sequence[_IndexedRequest]],
        make_item: Callable,
    ) -> Iterator[Tuple[int, Optional[object], Sequence[_IndexedRequest]]]:
        """Completion-order dispatch with retry/backoff and circuit breakers.

        Yields ``(chunk_index, outcome, executed_chunk)`` triples:
        ``outcome`` is the chunk worker's result, or ``None`` when the
        fault layer gave up; ``executed_chunk`` is the chunk that actually
        ran (the original, or a breaker-rerouted rewrite onto a cheaper
        cascade tier).

        Dispatch runs on the executor's ``submit_stream`` seam, so one
        chunk's failure never cancels unrelated futures.  A retryable
        failure re-enters the dispatcher after
        ``RetryPolicy.delay_s(attempt, key)`` — the backoff is held in
        the dispatcher's delay heap, never slept inside a worker, so a
        retrying chunk costs zero executor capacity until it is due.
        Per-model breakers observe successes and *final* failures —
        exhausted retry budgets and permanent errors, not attempt-level
        flakes a retry then fixed; an open breaker short-circuits
        submission (reroute or explicit failure) instead of burning
        calls against a failing backend.
        """
        stream = self.executor.submit_stream(fn)
        capacity = self._capacity()
        policy = self.retry_policy
        pending: deque = deque((index, 0) for index in range(len(chunks)))
        #: Backoff heap: (ready_at, tiebreak, chunk_index, attempt).
        delayed: List[Tuple[float, int, int, int]] = []
        tiebreak = 0
        outstanding = len(chunks)
        try:
            while outstanding > 0:
                now = time.monotonic()
                while delayed and delayed[0][0] <= now:
                    _, _, index, attempt = heapq.heappop(delayed)
                    pending.append((index, attempt))
                while pending and stream.inflight < capacity:
                    index, attempt = pending.popleft()
                    routed = self._breaker_route(chunks[index])
                    if routed is None:
                        self.telemetry.record_breaker_short_circuits(1)
                        outstanding -= 1
                        yield index, None, chunks[index]
                        continue
                    stream.submit(make_item(routed), (index, attempt, routed))
                if stream.inflight == 0:
                    if not pending and not delayed:
                        break  # every chunk resolved mid-refill
                    # Nothing runs until the next backoff matures; sleep
                    # just long enough instead of spinning the poll.
                    if delayed:
                        remaining = delayed[0][0] - time.monotonic()
                        if remaining > 0:
                            time.sleep(min(remaining, self.speculation_poll_s))
                    continue
                for tag, future in stream.wait(self.speculation_poll_s):
                    index, attempt, executed_chunk = tag
                    error = future.exception()
                    if error is None:
                        identity = getattr(
                            executed_chunk[0][1].model,
                            "cache_identity",
                            executed_chunk[0][1].model.name,
                        )
                        self.breakers.breaker(identity).record_success()
                        outstanding -= 1
                        yield index, future.result(), executed_chunk
                        continue
                    identity = getattr(
                        executed_chunk[0][1].model,
                        "cache_identity",
                        executed_chunk[0][1].model.name,
                    )
                    if policy.allows(attempt) and is_retryable(error):
                        # A failure the backoff may still fix is *not*
                        # breaker evidence: tripping on attempt-level
                        # flakes would make whether a run degrades depend
                        # on scheduling order, breaking the guarantee
                        # that chaos-with-enough-retries is bit-identical
                        # to fault-free.  The breaker watches the retry
                        # layer's *verdicts* — exhausted budgets and
                        # permanent errors — i.e. models retries cannot
                        # save.
                        self.telemetry.record_retries(1)
                        delay = policy.delay_s(attempt, key=f"{identity}|{index}")
                        heapq.heappush(
                            delayed,
                            (time.monotonic() + delay, tiebreak, index, attempt + 1),
                        )
                        tiebreak += 1
                    else:
                        if self.breakers.breaker(identity).record_failure():
                            self.telemetry.record_breaker_opens(1)
                        self.telemetry.record_retry_giveups(1)
                        outstanding -= 1
                        yield index, None, executed_chunk
        finally:
            stream.close()

    def _journal_key(self, request: DetectionRequest) -> str:
        model = request.model
        identity = getattr(model, "cache_identity", model.name)
        return request_key(
            identity, request.strategy.value, request.scoring, request.record.name
        )

    def _journal_filter(
        self,
        indexed: List[_IndexedRequest],
        results: List[Optional[RunResult]],
    ) -> List[_IndexedRequest]:
        """Answer journaled requests in place; return the remaining work.

        A journaled response is *re-scored* through the same deterministic
        ``score_response`` path it originally took, so a resumed run's
        results are bit-identical to an uninterrupted one — without ever
        touching the model.  Journaled shed entries replay as skips;
        failures are never journaled, so a resume retries them.
        """
        remaining: List[_IndexedRequest] = []
        hits = 0
        for index, request in indexed:
            payload = self.journal.get(self._journal_key(request))
            result = None
            if payload is not None:
                if payload.get("skipped"):
                    result = shed_result(request)
                elif isinstance(payload.get("response"), str):
                    result = score_response(request, payload["response"])
            if result is not None:
                results[index] = result
                hits += 1
            else:
                remaining.append((index, request))
        if hits:
            self.telemetry.record_journal(hits=hits)
        return remaining

    def _journal_record(
        self,
        chunk: Sequence[_IndexedRequest],
        scored: Sequence[Tuple[int, RunResult]],
    ) -> None:
        """Durably append one completed chunk's outcomes to the journal.

        Keys are per-request content hashes over the *original* requests,
        so resume hits survive re-drawn chunk boundaries and
        breaker-rerouted execution alike.  Failed results are excluded —
        a resume should retry them, not replay the failure.
        """
        if self.journal is None or not scored:
            return
        by_index = {index: request for index, request in chunk}
        entries: Dict[str, Dict[str, object]] = {}
        for index, result in scored:
            request = by_index.get(index)
            if request is None or result.failed:
                continue
            entries[self._journal_key(request)] = {
                "record": request.record.name,
                "response": result.response,
                "skipped": result.skipped,
            }
        if not entries:
            return
        self.journal.record(chunk_journal_key(sorted(entries)), entries)
        self.telemetry.record_journal(appends=1)

    def _record_chunk(
        self,
        chunk: Sequence[_IndexedRequest],
        counters: Dict[str, int],
        elapsed: float,
    ) -> None:
        """Fold one completed chunk into telemetry and the cost model."""
        request = chunk[0][1]
        model = request.model
        self.telemetry.record_model_calls(counters["calls"])
        # Coalesced wire calls are recorded by the coalescer's flush hook,
        # not per chunk — a flush spans chunks, so charging it here would
        # double count.
        self.telemetry.record_wire_calls(counters.get("wire", 0))
        # Distributed chunks report their worker's first shm attach; local
        # chunks never set the key.
        self.telemetry.record_shm_attach(counters.get("attach", 0))
        self.telemetry.record_cache(counters["hits"], counters["misses"])
        self.telemetry.record_group(
            model.name,
            request.strategy.value,
            requests=len(chunk),
            seconds=elapsed,
            hits=counters["hits"],
            misses=counters["misses"],
            calls=counters["calls"],
        )
        identity = getattr(model, "cache_identity", model.name)
        self.cost_model.observe(identity, request.strategy.value, elapsed / len(chunk))

    def _run_chunk(self, chunk: Sequence[_IndexedRequest]) -> _ChunkOutcome:
        """One executor work item: a same-(model, strategy, scoring) chunk.

        Counters are collected locally and merged by the dispatching thread
        (:meth:`_record_chunk`), keeping worker threads off the telemetry
        lock and giving every chunk an attributable wall time.
        """
        start = time.perf_counter()
        model = chunk[0][1].model
        strategy = chunk[0][1].strategy
        counters = {"hits": 0, "misses": 0, "calls": 0, "wire": 0}
        codes = [request.code for _, request in chunk]
        responses = run_strategy_batch(
            lambda prompts: self._generate_many(model, prompts, counters), strategy, codes
        )
        scored = [
            (index, score_response(request, response))
            for (index, request), response in zip(chunk, responses)
        ]
        return scored, counters, time.perf_counter() - start

    def _generate_many(
        self, model, prompts: Sequence[str], counters: Dict[str, int]
    ) -> List[str]:
        """Cache-aware batched generation: only misses reach the model."""
        prompts = list(prompts)
        if self.cache is None:
            counters["calls"] += len(prompts)
            counters["wire"] += 1
            return _require_batch_length(
                list(model.generate_batch(prompts)), len(prompts)
            )
        identity = getattr(model, "cache_identity", model.name)
        responses, hits, misses = _generate_with_cache(
            model,
            prompts,
            lambda prompt: self.cache.get(identity, prompt),
            lambda prompt, response: self.cache.put(identity, prompt, response),
        )
        counters["hits"] += hits
        counters["misses"] += misses
        counters["calls"] += misses
        if misses:
            counters["wire"] += 1
        return responses

    # -- the async-native chunk path -------------------------------------------------

    async def _run_chunk_async(self, chunk: Sequence[_IndexedRequest]) -> _ChunkOutcome:
        """One chunk as a coroutine: model I/O awaited, never thread-blocked.

        The semantics mirror :meth:`_run_chunk` exactly — same prompts,
        same cache interaction, same scoring — so the async-native path
        inherits the engine's bit-identical-results guarantee.  Only the
        transport differs: misses go through ``generate_batch_async``
        (optionally merged with other chunks' misses by the coalescer)
        instead of a blocking ``generate_batch``.
        """
        self._inflight += 1
        self._inflight_peak = max(self._inflight_peak, self._inflight)
        try:
            start = time.perf_counter()
            model = chunk[0][1].model
            strategy = chunk[0][1].strategy
            counters = {"hits": 0, "misses": 0, "calls": 0, "wire": 0}
            codes = [request.code for _, request in chunk]

            async def generate_many(prompts: Sequence[str]) -> List[str]:
                return await self._generate_many_async(model, strategy, prompts, counters)

            responses = await run_strategy_batch_async(generate_many, strategy, codes)
            scored = [
                (index, score_response(request, response))
                for (index, request), response in zip(chunk, responses)
            ]
            return scored, counters, time.perf_counter() - start
        finally:
            self._inflight -= 1

    async def _generate_many_async(
        self, model, strategy, prompts: Sequence[str], counters: Dict[str, int]
    ) -> List[str]:
        """Async mirror of :meth:`_generate_many`: only misses reach the model.

        Misses are sent through the micro-batch coalescer when one is
        configured, keyed by (model, strategy), so chunks awaiting a slot
        at the same moment share one ``generate_batch_async`` wire call.
        Sync-only models (no native async override) bypass the coalescer:
        their batch call runs serially in one offload thread, so merging
        many chunks into it would *serialise* work the per-chunk offloads
        run in parallel across the executor's pool.
        """
        prompts = list(prompts)
        coalesce = self.coalescer is not None and getattr(
            model, "has_native_async", True
        )

        async def call_model(miss_prompts: List[str]) -> List[str]:
            if coalesce:
                # The coalescer's _call enforces the length contract and
                # its flush hook feeds the wire-call counter.
                return await self.coalescer.generate(
                    (id(model), strategy.value),
                    model.generate_batch_async,
                    miss_prompts,
                )
            counters["wire"] += 1
            return _require_batch_length(
                list(await model.generate_batch_async(miss_prompts)),
                len(miss_prompts),
                "generate_batch_async",
            )

        if self.cache is None:
            counters["calls"] += len(prompts)
            return await call_model(prompts)
        identity = getattr(model, "cache_identity", model.name)
        responses, miss_positions = _partition_cached(
            prompts, lambda prompt: self.cache.get(identity, prompt)
        )
        if miss_positions:
            generated = await call_model([prompts[i] for i in miss_positions])
            for position, response in zip(miss_positions, generated):
                responses[position] = response
                self.cache.put(identity, prompts[position], response)
        counters["hits"] += len(prompts) - len(miss_positions)
        counters["misses"] += len(miss_positions)
        counters["calls"] += len(miss_positions)
        return responses  # type: ignore[return-value]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        cache = f"cache={len(self.cache)} entries" if self.cache is not None else "no cache"
        return (
            f"<ExecutionEngine executor={self.executor!r} dispatch={self.dispatch}"
            f" batch_size={self.batch_size} lpt={self.lpt} {cache}>"
        )
