"""The execution engine: batched, cached, parallel model evaluation.

:class:`ExecutionEngine` is the single funnel every evaluation path uses to
call a language model.  Given a sequence of
:class:`~repro.engine.requests.DetectionRequest`, it

1. groups requests by (model instance, strategy, scoring mode) and splits
   each group into chunks of ``batch_size``;
2. maps the chunks over the configured executor (serial or thread pool);
3. inside a chunk, renders all prompts via
   :func:`~repro.prompting.chains.run_strategy_batch`, satisfies what it can
   from the response cache and sends only the misses to the model's
   ``generate_batch``;
4. scores each response (:func:`~repro.engine.requests.score_response`) and
   reassembles the results in the original request order.

Because scoring preserves request order and the simulated models are
deterministic functions of (model, strategy, code), the engine's output is
bit-identical across executors and cache states — the refactor is purely
about *how* the calls run, never about *what* they return.  (With a
non-deterministic model the cache pins the first response per prompt.)
"""

from __future__ import annotations

import time
from collections import OrderedDict
from typing import Callable, Iterable, List, Optional, Sequence, Tuple, TypeVar

from repro.engine.cache import ResponseCache
from repro.engine.executors import SerialExecutor, create_executor
from repro.engine.requests import DetectionRequest, RunResult, RunResultStore, score_response
from repro.engine.telemetry import EngineTelemetry
from repro.prompting.chains import run_strategy_batch

__all__ = ["ExecutionEngine", "resolve_engine"]

T = TypeVar("T")
R = TypeVar("R")

_IndexedRequest = Tuple[int, DetectionRequest]


def resolve_engine(engine: Optional["ExecutionEngine"]) -> "ExecutionEngine":
    """The caller's engine, or the default: a fresh serial, uncached one.

    The single definition of "no engine given" — every driver that accepts
    an optional ``engine`` funnels through here, so default semantics can
    never drift between the table drivers and the cross-validation loop.
    """
    return engine if engine is not None else ExecutionEngine()


class ExecutionEngine:
    """Runs batches of detection requests through an executor and a cache.

    Parameters
    ----------
    executor:
        An object with order-preserving ``map(fn, items)``; defaults to
        :class:`~repro.engine.executors.SerialExecutor`.  Pass ``jobs=N``
        instead to get a thread pool of width ``N``.
    cache:
        A :class:`~repro.engine.cache.ResponseCache`, or ``None`` to call
        the model for every request.
    batch_size:
        Maximum requests per chunk; one chunk is one executor work item and
        at most one ``generate_batch`` call per chain phase.
    """

    def __init__(
        self,
        *,
        executor=None,
        jobs: Optional[int] = None,
        cache: Optional[ResponseCache] = None,
        batch_size: int = 32,
        telemetry: Optional[EngineTelemetry] = None,
    ) -> None:
        if executor is not None and jobs is not None:
            raise ValueError("pass either executor or jobs, not both")
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.executor = executor if executor is not None else create_executor(jobs or 1)
        self.cache = cache
        self.batch_size = batch_size
        self.telemetry = telemetry or EngineTelemetry()

    # -- the main entry point -------------------------------------------------------

    def run(self, requests: Iterable[DetectionRequest]) -> RunResultStore:
        """Execute every request; results come back in request order."""
        indexed: List[_IndexedRequest] = list(enumerate(requests))
        start = time.perf_counter()
        results: List[Optional[RunResult]] = [None] * len(indexed)
        chunks = self._chunk(indexed)
        for chunk_result in self.executor.map(self._run_chunk, chunks):
            for index, result in chunk_result:
                results[index] = result
        self.telemetry.record_requests(len(indexed))
        self.telemetry.record_run(time.perf_counter() - start)
        return RunResultStore(results)

    def run_counts(self, requests: Iterable[DetectionRequest]):
        """Shorthand: execute and fold straight into confusion counts."""
        return self.run(requests).confusion()

    # -- generic parallel map (non-LLM work, e.g. the Inspector baseline) ----------

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        """Run ``fn`` over ``items`` on the engine's executor, with telemetry."""
        items = list(items)
        start = time.perf_counter()
        mapped = self.executor.map(fn, items)
        self.telemetry.record_requests(len(items))
        self.telemetry.record_run(time.perf_counter() - start)
        return mapped

    # -- internals ------------------------------------------------------------------

    def _chunk(self, indexed: Sequence[_IndexedRequest]) -> List[List[_IndexedRequest]]:
        """Group by (model, strategy, scoring), then split into batch-sized runs."""
        groups: "OrderedDict[Tuple[int, str, str], List[_IndexedRequest]]" = OrderedDict()
        for index, request in indexed:
            key = (id(request.model), request.strategy.value, request.scoring)
            groups.setdefault(key, []).append((index, request))
        chunks: List[List[_IndexedRequest]] = []
        for group in groups.values():
            for start in range(0, len(group), self.batch_size):
                chunks.append(group[start : start + self.batch_size])
        return chunks

    def _run_chunk(self, chunk: Sequence[_IndexedRequest]) -> List[Tuple[int, RunResult]]:
        """One executor work item: a same-(model, strategy, scoring) chunk."""
        model = chunk[0][1].model
        strategy = chunk[0][1].strategy
        codes = [request.code for _, request in chunk]
        responses = run_strategy_batch(
            lambda prompts: self._generate_many(model, prompts), strategy, codes
        )
        return [
            (index, score_response(request, response))
            for (index, request), response in zip(chunk, responses)
        ]

    def _generate_many(self, model, prompts: Sequence[str]) -> List[str]:
        """Cache-aware batched generation: only misses reach the model."""
        prompts = list(prompts)
        if self.cache is None:
            self.telemetry.record_model_calls(len(prompts))
            return list(model.generate_batch(prompts))
        identity = getattr(model, "cache_identity", model.name)
        responses: List[Optional[str]] = [None] * len(prompts)
        miss_positions: List[int] = []
        hits = 0
        for position, prompt in enumerate(prompts):
            cached = self.cache.get(identity, prompt)
            if cached is not None:
                responses[position] = cached
                hits += 1
            else:
                miss_positions.append(position)
        if miss_positions:
            generated = model.generate_batch([prompts[i] for i in miss_positions])
            self.telemetry.record_model_calls(len(miss_positions))
            for position, response in zip(miss_positions, generated):
                responses[position] = response
                self.cache.put(identity, prompts[position], response)
        self.telemetry.record_cache(hits, len(miss_positions))
        return responses  # type: ignore[return-value]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        cache = f"cache={len(self.cache)} entries" if self.cache is not None else "no cache"
        return f"<ExecutionEngine executor={self.executor!r} batch_size={self.batch_size} {cache}>"
