"""The execution engine: batched, cached, parallel model evaluation.

:class:`ExecutionEngine` is the single funnel every evaluation path uses to
call a language model.  Given a sequence of
:class:`~repro.engine.requests.DetectionRequest`, it

1. groups requests by (model instance, strategy, scoring mode) and splits
   each group into chunks of ``batch_size``;
2. maps the chunks over the configured executor (serial, thread pool,
   process pool or async — see :mod:`repro.engine.executors`);
3. inside a chunk, renders all prompts via
   :func:`~repro.prompting.chains.run_strategy_batch`, satisfies what it can
   from the response cache and sends only the misses to the model's
   ``generate_batch``;
4. scores each response (:func:`~repro.engine.requests.score_response`) and
   reassembles the results in the original request order.

For *distributed* executors (``executor.distributed`` is true, e.g. the
process pool) the work item crossing the boundary must be picklable, so the
engine ships self-contained chunk payloads — the requests plus a read-only
snapshot of the cache — to the module-level :func:`_score_chunk_payload`
worker, then merges the returned entries and telemetry back in the parent.

Because scoring preserves request order and the simulated models are
deterministic functions of (model, strategy, code), the engine's output is
bit-identical across executors and cache states — the refactor is purely
about *how* the calls run, never about *what* they return.  (With a
non-deterministic model the cache pins the first response per prompt.)
"""

from __future__ import annotations

import time
from collections import OrderedDict
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, TypeVar

from repro.engine.cache import ResponseCache, cache_key
from repro.engine.executors import SerialExecutor, create_executor
from repro.engine.requests import DetectionRequest, RunResult, RunResultStore, score_response
from repro.engine.telemetry import EngineTelemetry
from repro.prompting.chains import run_strategy_batch

__all__ = ["ExecutionEngine", "resolve_engine"]

T = TypeVar("T")
R = TypeVar("R")

_IndexedRequest = Tuple[int, DetectionRequest]

#: What a distributed chunk worker sends back: the scored results plus the
#: cache/telemetry deltas the parent must merge.
_ChunkOutcome = Tuple[List[Tuple[int, RunResult]], Dict[str, str], int, int, int]


def resolve_engine(engine: Optional["ExecutionEngine"]) -> "ExecutionEngine":
    """The caller's engine, or the default: a fresh serial, uncached one.

    The single definition of "no engine given" — every driver that accepts
    an optional ``engine`` funnels through here, so default semantics can
    never drift between the table drivers and the cross-validation loop.
    """
    return engine if engine is not None else ExecutionEngine()


def _generate_with_cache(
    model,
    prompts: Sequence[str],
    get_response: Callable[[str], Optional[str]],
    put_response: Callable[[str, str], None],
) -> Tuple[List[str], int, int]:
    """The one implementation of cache-aware batched generation.

    Satisfies what it can via ``get_response`` (``None`` = miss), sends
    only the misses to ``model.generate_batch`` in one call, stores fresh
    responses via ``put_response`` and returns ``(responses, hits,
    misses)`` in prompt order.  Both the in-process engine path and the
    distributed chunk worker delegate here, so miss handling can never
    drift between executors.
    """
    prompts = list(prompts)
    responses: List[Optional[str]] = [None] * len(prompts)
    miss_positions: List[int] = []
    hits = 0
    for position, prompt in enumerate(prompts):
        cached = get_response(prompt)
        if cached is not None:
            responses[position] = cached
            hits += 1
        else:
            miss_positions.append(position)
    if miss_positions:
        generated = model.generate_batch([prompts[i] for i in miss_positions])
        for position, response in zip(miss_positions, generated):
            responses[position] = response
            put_response(prompts[position], response)
    return responses, hits, len(miss_positions)  # type: ignore[return-value]


def _score_chunk_payload(payload: Tuple[Sequence[_IndexedRequest], Optional[Dict[str, str]]]) -> _ChunkOutcome:
    """Score one chunk in a worker process (no shared state with the parent).

    ``payload`` is ``(chunk, cache_entries)`` where ``cache_entries`` is a
    read-only key→response snapshot of the parent cache (or ``None`` when
    caching is off).  The worker cannot mutate the parent cache, so it
    returns the entries it generated alongside hit/miss/model-call counts;
    the parent merges them after the map.  Chunks from the same run cannot
    see each other's fresh entries — with deterministic models that only
    costs duplicate calls, never changes a response.
    """
    chunk, cache_entries = payload
    model = chunk[0][1].model
    strategy = chunk[0][1].strategy
    identity = getattr(model, "cache_identity", model.name)
    new_entries: Dict[str, str] = {}
    counters = {"hits": 0, "misses": 0, "calls": 0}

    def get_response(prompt: str) -> Optional[str]:
        key = cache_key(identity, prompt)
        return cache_entries.get(key, new_entries.get(key))  # type: ignore[union-attr]

    def put_response(prompt: str, response: str) -> None:
        new_entries[cache_key(identity, prompt)] = response

    def generate_many(prompts: Sequence[str]) -> List[str]:
        if cache_entries is None:
            counters["calls"] += len(prompts)
            return list(model.generate_batch(prompts))
        responses, hits, misses = _generate_with_cache(
            model, prompts, get_response, put_response
        )
        counters["hits"] += hits
        counters["misses"] += misses
        counters["calls"] += misses
        return responses

    responses = run_strategy_batch(generate_many, strategy, [r.code for _, r in chunk])
    scored = [
        (index, score_response(request, response))
        for (index, request), response in zip(chunk, responses)
    ]
    return scored, new_entries, counters["hits"], counters["misses"], counters["calls"]


class ExecutionEngine:
    """Runs batches of detection requests through an executor and a cache.

    Parameters
    ----------
    executor:
        An object with order-preserving ``map(fn, items)``; defaults to
        :class:`~repro.engine.executors.SerialExecutor`.
    jobs:
        Shorthand: build the executor via
        :func:`~repro.engine.executors.create_executor` with this width.
    executor_kind:
        Backend name (``"serial"``, ``"thread"``, ``"process"``,
        ``"async"`` or anything registered); combines with ``jobs``.
        Mutually exclusive with ``executor``.
    cache:
        A :class:`~repro.engine.cache.ResponseCache`, or ``None`` to call
        the model for every request.
    batch_size:
        Maximum requests per chunk; one chunk is one executor work item and
        at most one ``generate_batch`` call per chain phase.
    """

    def __init__(
        self,
        *,
        executor=None,
        jobs: Optional[int] = None,
        executor_kind: Optional[str] = None,
        cache: Optional[ResponseCache] = None,
        batch_size: int = 32,
        telemetry: Optional[EngineTelemetry] = None,
    ) -> None:
        if executor is not None and (jobs is not None or executor_kind is not None):
            raise ValueError("pass either executor or jobs/executor_kind, not both")
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.executor = (
            executor
            if executor is not None
            else create_executor(jobs or 1, kind=executor_kind)
        )
        self.cache = cache
        self.batch_size = batch_size
        self.telemetry = telemetry or EngineTelemetry()

    # -- the main entry point -------------------------------------------------------

    def run(self, requests: Iterable[DetectionRequest]) -> RunResultStore:
        """Execute every request; results come back in request order."""
        indexed: List[_IndexedRequest] = list(enumerate(requests))
        start = time.perf_counter()
        results: List[Optional[RunResult]] = [None] * len(indexed)
        chunks = self._chunk(indexed)
        if getattr(self.executor, "distributed", False):
            self._run_distributed(chunks, results)
        else:
            for chunk_result in self.executor.map(self._run_chunk, chunks):
                for index, result in chunk_result:
                    results[index] = result
        self.telemetry.record_requests(len(indexed))
        self.telemetry.record_run(time.perf_counter() - start)
        return RunResultStore(results)

    def run_counts(self, requests: Iterable[DetectionRequest]):
        """Shorthand: execute and fold straight into confusion counts."""
        return self.run(requests).confusion()

    # -- generic parallel map (non-LLM work, e.g. the Inspector baseline) ----------

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        """Run ``fn`` over ``items`` on the engine's executor, with telemetry.

        With a distributed executor, ``fn`` and every item must be picklable
        (a module-level function or a method of a picklable instance).
        """
        items = list(items)
        start = time.perf_counter()
        mapped = self.executor.map(fn, items)
        self.telemetry.record_requests(len(items))
        self.telemetry.record_run(time.perf_counter() - start)
        return mapped

    # -- lifecycle ------------------------------------------------------------------

    def close(self) -> None:
        """Release the executor's pool/loop (idempotent).

        The cache is left untouched — persistence stays an explicit
        decision (:meth:`ResponseCache.save` / the pipeline's
        ``save_cache``).
        """
        close = getattr(self.executor, "close", None)
        if callable(close):
            close()

    def __enter__(self) -> "ExecutionEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- internals ------------------------------------------------------------------

    def _chunk(self, indexed: Sequence[_IndexedRequest]) -> List[List[_IndexedRequest]]:
        """Group by (model, strategy, scoring), then split into batch-sized runs."""
        groups: "OrderedDict[Tuple[int, str, str], List[_IndexedRequest]]" = OrderedDict()
        for index, request in indexed:
            key = (id(request.model), request.strategy.value, request.scoring)
            groups.setdefault(key, []).append((index, request))
        chunks: List[List[_IndexedRequest]] = []
        for group in groups.values():
            for start in range(0, len(group), self.batch_size):
                chunks.append(group[start : start + self.batch_size])
        return chunks

    def _run_distributed(
        self,
        chunks: Sequence[Sequence[_IndexedRequest]],
        results: List[Optional[RunResult]],
    ) -> None:
        """Map chunks over a process-boundary executor and merge the deltas.

        The cache snapshot rides along in every payload, so a warm cache is
        pickled once per chunk — O(chunks × entries) serialisation in the
        parent.  That is the price of keeping workers stateless against a
        persistent pool; shipping it once per run (pool initializer /
        shared memory) is a known optimisation, tracked in the ROADMAP.
        """
        snapshot = self.cache.snapshot_entries() if self.cache is not None else None
        payloads = [(chunk, snapshot) for chunk in chunks]
        for scored, new_entries, hits, misses, calls in self.executor.map(
            _score_chunk_payload, payloads
        ):
            for index, result in scored:
                results[index] = result
            if self.cache is not None:
                for key, response in new_entries.items():
                    self.cache.put_key(key, response)
            self.telemetry.record_model_calls(calls)
            self.telemetry.record_cache(hits, misses)

    def _run_chunk(self, chunk: Sequence[_IndexedRequest]) -> List[Tuple[int, RunResult]]:
        """One executor work item: a same-(model, strategy, scoring) chunk."""
        model = chunk[0][1].model
        strategy = chunk[0][1].strategy
        codes = [request.code for _, request in chunk]
        responses = run_strategy_batch(
            lambda prompts: self._generate_many(model, prompts), strategy, codes
        )
        return [
            (index, score_response(request, response))
            for (index, request), response in zip(chunk, responses)
        ]

    def _generate_many(self, model, prompts: Sequence[str]) -> List[str]:
        """Cache-aware batched generation: only misses reach the model."""
        prompts = list(prompts)
        if self.cache is None:
            self.telemetry.record_model_calls(len(prompts))
            return list(model.generate_batch(prompts))
        identity = getattr(model, "cache_identity", model.name)
        responses, hits, misses = _generate_with_cache(
            model,
            prompts,
            lambda prompt: self.cache.get(identity, prompt),
            lambda prompt, response: self.cache.put(identity, prompt, response),
        )
        self.telemetry.record_model_calls(misses)
        self.telemetry.record_cache(hits, misses)
        return responses

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        cache = f"cache={len(self.cache)} entries" if self.cache is not None else "no cache"
        return f"<ExecutionEngine executor={self.executor!r} batch_size={self.batch_size} {cache}>"
