"""Batched, cached, parallel execution of model evaluation work.

Every path that evaluates a language model over DRB-ML records — the
pipeline facade, the ``run_tableN`` experiment drivers, the fine-tuning
cross-validation and the benchmark harness — routes through this package
instead of looping over ``model.generate`` itself.

Module map
----------

``core``
    :class:`ExecutionEngine` — accepts batches of
    :class:`DetectionRequest`, chunks them per (model, strategy) with
    cost-model-driven sizes and LPT (longest-processing-time-first) order,
    dispatches the chunks over an executor (``dispatch="dynamic"`` merges
    them in completion order, ``"ordered"`` through blocking ``map``),
    satisfies repeats from the cache, and returns an order-preserving
    :class:`RunResultStore`.  Also offers a generic ``map`` for non-LLM
    work (the Inspector baseline).  For distributed executors it ships
    picklable chunk payloads to a module-level worker — the cache snapshot
    is broadcast once per run via a temp file, not pickled per chunk — and
    merges cache/telemetry deltas back.
``cascade``
    :class:`CascadeRouter` / :class:`CascadePolicy` — the tiered detection
    cascade (``--cascade``): records are scored through an ordered ladder
    of cheap tiers (static analyzer, dynamic inspector, fast zoo models)
    and only low-confidence or disagreeing verdicts escalate to the
    request's own model, the implicit final tier.  Each tier's batch is
    re-emitted through the engine's plain executor, so every scheduling
    feature composes per tier.
``faults``
    The fault-tolerance plane: the error taxonomy
    (:class:`TransientModelError` / :class:`PermanentModelError` /
    :class:`MalformedResponseError` under :class:`ModelError`, with
    :func:`classify_error` mapping arbitrary exceptions into it),
    :class:`RetryPolicy` (exponential backoff with deterministic seeded
    jitter; ``--retries`` / ``--retry-base-ms``), per-model
    :class:`CircuitBreaker` s in a :class:`BreakerBoard` keyed on
    ``cache_identity``, and the :class:`RunJournal` (``--journal``) — an
    append-only JSONL checkpoint of completed chunk outcomes an
    interrupted run resumes from without re-invoking models.
``costmodel``
    :class:`CostModel` — per-(model ``cache_identity``, strategy) EWMA of
    observed seconds-per-request, fed by chunk telemetry, driving LPT
    ordering and adaptive chunk sizing; optionally persisted as
    ``costmodel.json`` beside the response cache.  Tier adapters publish a
    ``cost_prior_s`` planning prior (:meth:`CostModel.set_prior`) so
    unobserved cheap tiers never block LPT ordering.
``coalesce``
    :class:`MicroBatchCoalescer` — merges concurrent
    ``generate_batch_async`` calls for the same (model, strategy) into one
    wire call on the async-native path (window + max-batch bounded);
    responses are sliced back per caller, so results never change.
``requests``
    The request/result dataclasses and the *only* implementation of
    response scoring → confusion-count assembly (modes ``"detection"``,
    ``"pairs"``, ``"pairs-strict"``; see the module docstring).
``executors``
    The executor registry: :class:`SerialExecutor` (reference),
    :class:`ThreadPoolExecutor`, :class:`ProcessPoolExecutor` (shards
    CPU-bound work across processes) and :class:`AsyncExecutor` (a
    persistent asyncio loop — the seam for real async API adapters).  A
    backend implements order-preserving ``map(fn, items)``, ``submit`` and
    completion-order ``map_unordered`` (streams ``(index, result)`` pairs
    as work finishes) plus ``close()``; register a factory with
    :func:`register_executor` to make it selectable via ``--executor``.
``scheduler``
    The cross-table run scheduler: :class:`TablePlan` (a table's requests
    plus its reducer) and :func:`run_all_tables`, which interleaves every
    table's mixed-model request batches into **one** engine run so model
    latency overlaps across tables instead of serialising five drivers.
``cache``
    :class:`ResponseCache` — thread-safe LRU keyed on the content hash of
    ``(model.cache_identity, prompt)``, persisted as a directory of
    size-bounded append-only JSONL segments written atomically
    (``--cache`` on the CLI; legacy single-file caches still load).
    Eviction is tiered: entry-count *and* byte budgets (``max_bytes``),
    lazy TTL expiry (``ttl_s``) and cost-model-weighted victim selection
    compose (see :meth:`ResponseCache._select_victim_locked`).
``snapshot``
    The zero-copy broadcast plane for distributed runs:
    :func:`publish_snapshot` encodes the warm cache once into a
    shared-memory block (length-prefixed binary layout; pickle-temp-file
    fallback), workers attach a :class:`SharedSnapshotView` and
    binary-search it in place instead of deserialising private copies.
``sharedstore``
    :class:`SharedSegmentStore` — a lock-free, mmap-backed, multi-reader
    view over a segment directory, opened once per host
    (``SharedSegmentStore.open``); ``ResponseCache(shared_read=True)``
    serves misses through it instead of loading segments privately.
``telemetry``
    :class:`EngineTelemetry` — thread-safe counters (requests, model
    calls, cache hits/misses, wall time) with a one-line ``format_stats``
    for the CLI and a ``snapshot`` dict for ``BENCH_engine.json``.

Guarantee: the engine is a pure execution refactor.  For the deterministic
simulated models, confusion counts are bit-identical across executors,
batch sizes, cache states and scheduling (interleaved vs. per-table) —
enforced by ``tests/engine/test_equivalence`` and
``tests/engine/test_scheduler``.
"""

from repro.engine.cache import CacheStats, ResponseCache, cache_key
from repro.engine.cascade import (
    DEFAULT_CASCADE_TIERS,
    DEFAULT_ESCALATE_BELOW,
    CascadePolicy,
    CascadeRouter,
    CascadeTier,
    build_tier_model,
)
from repro.engine.coalesce import MicroBatchCoalescer
from repro.engine.core import (
    DEFAULT_STREAM_WINDOW,
    DISPATCH_MODES,
    ExecutionEngine,
    resolve_engine,
)
from repro.engine.costmodel import CostModel
from repro.engine.faults import (
    DEFAULT_BREAKER_COOLDOWN_S,
    DEFAULT_BREAKER_THRESHOLD,
    DEFAULT_RETRY_BASE_MS,
    BreakerBoard,
    CircuitBreaker,
    MalformedResponseError,
    ModelError,
    PermanentModelError,
    RetryPolicy,
    RunJournal,
    TransientModelError,
    classify_error,
    is_retryable,
)
from repro.engine.executors import (
    EXECUTOR_KINDS,
    AsyncExecutor,
    ProcessPoolExecutor,
    SerialExecutor,
    ThreadPoolExecutor,
    available_executors,
    create_executor,
    register_executor,
)
from repro.engine.requests import (
    FAILED_RESPONSE,
    SCORING_MODES,
    SHED_RESPONSE,
    DetectionRequest,
    RunResult,
    RunResultStore,
    build_requests,
    confusion_from_results,
    failed_result,
    iter_requests,
    response_confidence,
    score_response,
    shed_result,
)
from repro.engine.sharedstore import SharedSegmentStore
from repro.engine.snapshot import (
    SNAPSHOT_TRANSPORTS,
    PublishedSnapshot,
    SharedSnapshotView,
    encode_snapshot,
    load_snapshot,
    publish_snapshot,
    retire_snapshot,
)
from repro.engine.scheduler import (
    DEFAULT_TABLES,
    TablePlan,
    collect_default_plans,
    results_fingerprint,
    run_all_tables,
    run_plans,
    run_plans_sequential,
    run_plans_streaming,
)
from repro.engine.telemetry import EngineTelemetry

__all__ = [
    "CacheStats",
    "ResponseCache",
    "cache_key",
    "DEFAULT_CASCADE_TIERS",
    "DEFAULT_ESCALATE_BELOW",
    "CascadePolicy",
    "CascadeRouter",
    "CascadeTier",
    "build_tier_model",
    "DEFAULT_STREAM_WINDOW",
    "DISPATCH_MODES",
    "ExecutionEngine",
    "resolve_engine",
    "MicroBatchCoalescer",
    "CostModel",
    "DEFAULT_BREAKER_COOLDOWN_S",
    "DEFAULT_BREAKER_THRESHOLD",
    "DEFAULT_RETRY_BASE_MS",
    "BreakerBoard",
    "CircuitBreaker",
    "MalformedResponseError",
    "ModelError",
    "PermanentModelError",
    "RetryPolicy",
    "RunJournal",
    "TransientModelError",
    "classify_error",
    "is_retryable",
    "EXECUTOR_KINDS",
    "AsyncExecutor",
    "ProcessPoolExecutor",
    "SerialExecutor",
    "ThreadPoolExecutor",
    "available_executors",
    "create_executor",
    "register_executor",
    "FAILED_RESPONSE",
    "SCORING_MODES",
    "SHED_RESPONSE",
    "DetectionRequest",
    "RunResult",
    "RunResultStore",
    "build_requests",
    "confusion_from_results",
    "failed_result",
    "iter_requests",
    "response_confidence",
    "score_response",
    "shed_result",
    "SharedSegmentStore",
    "SNAPSHOT_TRANSPORTS",
    "PublishedSnapshot",
    "SharedSnapshotView",
    "encode_snapshot",
    "load_snapshot",
    "publish_snapshot",
    "retire_snapshot",
    "DEFAULT_TABLES",
    "TablePlan",
    "collect_default_plans",
    "results_fingerprint",
    "run_all_tables",
    "run_plans",
    "run_plans_sequential",
    "run_plans_streaming",
    "EngineTelemetry",
]
