"""Batched, cached, parallel execution of model evaluation work.

Every path that evaluates a language model over DRB-ML records — the
pipeline facade, the ``run_tableN`` experiment drivers, the fine-tuning
cross-validation and the benchmark harness — routes through this package
instead of looping over ``model.generate`` itself.

Module map
----------

``core``
    :class:`ExecutionEngine` — accepts batches of
    :class:`DetectionRequest`, chunks them per (model, strategy), maps the
    chunks over an executor, satisfies repeats from the cache, and returns
    an order-preserving :class:`RunResultStore`.  Also offers a generic
    ``map`` for non-LLM work (the Inspector baseline).
``requests``
    The request/result dataclasses and the *only* implementation of
    response scoring → confusion-count assembly (modes ``"detection"``,
    ``"pairs"``, ``"pairs-strict"``; see the module docstring).
``executors``
    Pluggable execution backends: :class:`SerialExecutor` (reference) and
    :class:`ThreadPoolExecutor`.  A backend is anything with an
    order-preserving ``map(fn, items)``; implement that contract and pass
    an instance to the engine — or register it in
    :func:`create_executor` — to add a new one (async, multi-process, …).
``cache``
    :class:`ResponseCache` — thread-safe LRU keyed on the content hash of
    ``(model.cache_identity, prompt)``, with optional JSON file
    persistence (``--cache`` on the CLI).
``telemetry``
    :class:`EngineTelemetry` — thread-safe counters (requests, model
    calls, cache hits/misses, wall time) with a one-line ``format_stats``
    for the CLI and a ``snapshot`` dict for ``BENCH_engine.json``.

Guarantee: the engine is a pure execution refactor.  For the deterministic
simulated models, confusion counts are bit-identical across executors,
batch sizes and cache states (enforced by ``tests/engine/test_equivalence``).
"""

from repro.engine.cache import CacheStats, ResponseCache
from repro.engine.core import ExecutionEngine, resolve_engine
from repro.engine.executors import SerialExecutor, ThreadPoolExecutor, create_executor
from repro.engine.requests import (
    SCORING_MODES,
    DetectionRequest,
    RunResult,
    RunResultStore,
    build_requests,
    score_response,
)
from repro.engine.telemetry import EngineTelemetry

__all__ = [
    "CacheStats",
    "ResponseCache",
    "ExecutionEngine",
    "resolve_engine",
    "SerialExecutor",
    "ThreadPoolExecutor",
    "create_executor",
    "SCORING_MODES",
    "DetectionRequest",
    "RunResult",
    "RunResultStore",
    "build_requests",
    "score_response",
    "EngineTelemetry",
]
