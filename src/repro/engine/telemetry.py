"""Per-run telemetry: what the engine did and how fast.

The engine increments counters from worker threads, so every mutation goes
through a lock.  ``snapshot()`` returns a plain dict for machine-readable
output (the throughput benchmark's ``BENCH_engine.json``), ``format_stats()``
a one-line human summary for the CLI.

Besides the global counters, telemetry keeps a per-``(model, strategy)``
**group** breakdown — requests, model calls, cache hits/misses and summed
chunk wall time — fed by the engine after every chunk completes.
``group_snapshot()`` returns the groups slowest-first (mean seconds per
request) and ``format_group_stats()`` renders the top-k slowest for the
CLI, so a heterogeneous run shows at a glance *which* model/strategy pair
is eating the wall clock.  The same observations drive the cost model's
LPT scheduling (:mod:`repro.engine.costmodel`).
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Tuple

__all__ = ["EngineTelemetry"]


def _process_rss_kb() -> int:
    """Current resident set size of this process in kB (0 when unreadable).

    Reads ``/proc/self/status`` directly — no psutil dependency — so the
    gauge degrades to 0 on platforms without procfs instead of failing.
    """
    try:
        with open("/proc/self/status", "r", encoding="ascii", errors="replace") as fh:
            for line in fh:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1])
    except (OSError, ValueError, IndexError):
        pass
    return 0


class EngineTelemetry:
    """Thread-safe counters for one engine instance (cumulative across runs)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.requests = 0
        self.model_calls = 0
        #: Actual wire calls: one per ``generate_batch``/
        #: ``generate_batch_async`` invocation (one per coalescer flush on
        #: the coalesced path).  ``model_calls`` counts the *prompts* that
        #: missed the cache, so with coalescing or batching the two differ
        #: — this is the number an API rate limiter would see.  One caveat
        #: under ``--speculate``: a losing copy's calls on the
        #: thread/process path are dropped with its outcome (they may
        #: still be in flight when the run returns, so their count is
        #: unknowable), while coalesced flushes are always counted at the
        #: wire — so with speculation active this is a lower bound there
        #: and exact on the async path.
        self.wire_calls = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.runs = 0
        self.wall_time_s = 0.0
        #: Speculative re-execution: duplicates launched, races the
        #: duplicate won, and duplicate results that were dropped.
        self.speculation_launched = 0
        self.speculation_won = 0
        self.speculation_wasted = 0
        #: Cross-backend speculation: duplicates that ran on a cheaper
        #: fallback model (subset of launched) and the races they won.
        self.speculation_fallback_launched = 0
        self.speculation_fallback_won = 0
        #: Deadline-aware scheduling: requests shed to fit the budget,
        #: plus the last run's predicted/actual makespan and budget.
        self.deadline_shed = 0
        self.deadline_budget_s = 0.0
        self.deadline_predicted_s = 0.0
        self.deadline_actual_s = 0.0
        #: Peak concurrently-in-flight chunk coroutines (async-native path).
        self.async_inflight_peak = 0
        #: Peak requests resident in one planned batch — a whole run for
        #: ``engine.run``, one window for ``engine.run_streaming`` — so a
        #: streamed run's bounded footprint is observable, not assumed.
        self.resident_requests_peak = 0
        #: Peak process RSS in kB sampled at each batch boundary (0 where
        #: procfs is unavailable).  A gauge, not a delta: it never resets.
        self.peak_rss_kb = 0
        #: Snapshot broadcasts published for distributed runs, and the
        #: encoded bytes they carried (one shared mapping or temp file per
        #: run — *not* bytes-per-worker).
        self.broadcast_publishes = 0
        self.broadcast_bytes = 0
        #: Genuine worker-side shared-memory attaches (at most one per
        #: worker per run; the per-token memo absorbs the rest).  Stays 0
        #: on the temp-file path, so `publishes` vs `attaches` shows which
        #: transport a run actually used.
        self.shm_attach = 0
        #: Batched model calls issued by the micro-batch coalescer.
        self.coalesce_flushes = 0
        #: Requests that shared a flush with at least one other chunk —
        #: i.e. model calls *saved* by coalescing.
        self.coalesce_merged = 0
        #: Prompts carried by coalesced flushes.
        self.coalesce_prompts = 0
        #: Fault tolerance: requests surfaced as explicit failed results
        #: (retries exhausted, breaker short-circuit with no fallback).
        self.failed_requests = 0
        #: Chunk re-submissions after a retryable error, and chunks whose
        #: retry budget ran out.
        self.retries = 0
        self.retry_giveups = 0
        #: Circuit breakers: closed→open transitions, chunks rerouted to a
        #: cheaper cascade tier while a breaker was open, and chunks failed
        #: outright because no admissible model remained.
        self.breaker_opens = 0
        self.breaker_reroutes = 0
        self.breaker_short_circuits = 0
        #: Run journal: requests replayed from the journal instead of
        #: re-executed, and journal lines appended this process.
        self.journal_hits = 0
        self.journal_appends = 0
        #: (model, strategy) -> cumulative counters for that group's chunks.
        self._groups: Dict[Tuple[str, str], Dict[str, float]] = {}
        #: tier name -> cumulative cascade counters, in ladder order of
        #: first appearance (the router records tiers cheapest-first).
        self._cascade: Dict[str, Dict[str, int]] = {}

    # -- recording ------------------------------------------------------------------

    def record_requests(self, n: int) -> None:
        with self._lock:
            self.requests += n

    def record_model_calls(self, n: int) -> None:
        with self._lock:
            self.model_calls += n

    def record_wire_calls(self, n: int) -> None:
        with self._lock:
            self.wire_calls += n

    def record_speculation(
        self,
        *,
        launched: int = 0,
        won: int = 0,
        wasted: int = 0,
        fallback_launched: int = 0,
        fallback_won: int = 0,
    ) -> None:
        """Fold speculative re-execution events (all counters cumulative)."""
        with self._lock:
            self.speculation_launched += launched
            self.speculation_won += won
            self.speculation_wasted += wasted
            self.speculation_fallback_launched += fallback_launched
            self.speculation_fallback_won += fallback_won

    def record_cascade(
        self,
        tier: str,
        *,
        requests: int = 0,
        resolved: int = 0,
        escalated: int = 0,
        labeled: int = 0,
        correct: int = 0,
    ) -> None:
        """Fold one cascade tier pass: how many records it saw, kept, sent up.

        ``labeled``/``correct`` track tier accuracy over the records it
        *resolved* whose ground-truth label is known — the number that says
        whether a cheap tier is answering well or merely confidently.
        """
        with self._lock:
            stats = self._cascade.setdefault(
                tier,
                {"requests": 0, "resolved": 0, "escalated": 0, "labeled": 0, "correct": 0},
            )
            stats["requests"] += requests
            stats["resolved"] += resolved
            stats["escalated"] += escalated
            stats["labeled"] += labeled
            stats["correct"] += correct

    def record_deadline(
        self, *, budget_s: float, predicted_s: float, actual_s: float, shed: int
    ) -> None:
        """One deadline-scheduled run: budget, predicted vs actual, sheds."""
        with self._lock:
            self.deadline_budget_s = budget_s
            self.deadline_predicted_s = predicted_s
            self.deadline_actual_s = actual_s
            self.deadline_shed += shed

    def record_broadcast(self, nbytes: int) -> None:
        """One published cache snapshot (shm block or temp file) of ``nbytes``."""
        with self._lock:
            self.broadcast_publishes += 1
            self.broadcast_bytes += nbytes

    def record_shm_attach(self, n: int) -> None:
        """Fold worker-reported first-time shared-memory attaches."""
        if not n:
            return
        with self._lock:
            self.shm_attach += n

    def record_cache(self, hits: int, misses: int) -> None:
        with self._lock:
            self.cache_hits += hits
            self.cache_misses += misses

    def record_run(self, wall_time_s: float) -> None:
        with self._lock:
            self.runs += 1
            self.wall_time_s += wall_time_s

    def record_resident(self, n: int) -> None:
        """One planned batch of ``n`` resident requests (keeps the max).

        Also samples process RSS, so the two peaks land in the same
        ``[engine]`` line: how many requests were held at once, and how much
        memory the process actually touched while holding them.
        """
        rss_kb = _process_rss_kb()
        with self._lock:
            self.resident_requests_peak = max(self.resident_requests_peak, n)
            self.peak_rss_kb = max(self.peak_rss_kb, rss_kb)

    def record_inflight_peak(self, peak: int) -> None:
        """Fold one async run's peak concurrent chunk coroutines (keeps max)."""
        with self._lock:
            self.async_inflight_peak = max(self.async_inflight_peak, peak)

    def record_coalesce_flush(self, waiters: int, prompts: int) -> None:
        """One coalescer flush: ``waiters`` chunk calls merged into one.

        A flush is exactly one ``generate_batch_async`` invocation, so it
        is also the coalesced path's wire-call feed — per-chunk miss
        counting would overstate API calls precisely when coalescing
        reduced them.
        """
        with self._lock:
            self.coalesce_flushes += 1
            self.coalesce_merged += max(0, waiters - 1)
            self.coalesce_prompts += prompts
            self.wire_calls += 1

    def record_failed_requests(self, n: int) -> None:
        """Fold requests that completed as explicit failed results."""
        with self._lock:
            self.failed_requests += n

    def record_retries(self, n: int) -> None:
        """Fold chunk re-submissions triggered by retryable errors."""
        with self._lock:
            self.retries += n

    def record_retry_giveups(self, n: int) -> None:
        """Fold chunks whose retry budget was exhausted."""
        with self._lock:
            self.retry_giveups += n

    def record_breaker_opens(self, n: int) -> None:
        """Fold circuit-breaker closed→open transitions."""
        with self._lock:
            self.breaker_opens += n

    def record_breaker_reroutes(self, n: int) -> None:
        """Fold chunks rerouted to a cheaper tier past an open breaker."""
        with self._lock:
            self.breaker_reroutes += n

    def record_breaker_short_circuits(self, n: int) -> None:
        """Fold chunks failed outright because every admissible model's
        breaker was open."""
        with self._lock:
            self.breaker_short_circuits += n

    def record_journal(self, *, hits: int = 0, appends: int = 0) -> None:
        """Fold run-journal activity: replayed requests and appended lines."""
        with self._lock:
            self.journal_hits += hits
            self.journal_appends += appends

    def record_group(
        self,
        model: str,
        strategy: str,
        *,
        requests: int,
        seconds: float,
        hits: int = 0,
        misses: int = 0,
        calls: int = 0,
    ) -> None:
        """Fold one completed chunk into its (model, strategy) group."""
        with self._lock:
            group = self._groups.setdefault(
                (model, strategy),
                {"requests": 0, "seconds": 0.0, "hits": 0, "misses": 0, "calls": 0},
            )
            group["requests"] += requests
            group["seconds"] += seconds
            group["hits"] += hits
            group["misses"] += misses
            group["calls"] += calls

    # -- derived --------------------------------------------------------------------

    @property
    def cache_lookups(self) -> int:
        return self.cache_hits + self.cache_misses

    @property
    def cache_hit_rate(self) -> float:
        lookups = self.cache_lookups
        return self.cache_hits / lookups if lookups else 0.0

    @property
    def requests_per_second(self) -> float:
        return self.requests / self.wall_time_s if self.wall_time_s > 0 else 0.0

    def snapshot(self) -> Dict[str, float]:
        """A plain-dict view suitable for JSON serialisation."""
        with self._lock:
            return {
                "requests": self.requests,
                "model_calls": self.model_calls,
                "wire_calls": self.wire_calls,
                "cache_hits": self.cache_hits,
                "cache_misses": self.cache_misses,
                "cache_hit_rate": round(self.cache_hit_rate, 4),
                "runs": self.runs,
                "wall_time_s": round(self.wall_time_s, 4),
                "requests_per_second": round(self.requests_per_second, 2),
                "async_inflight_peak": self.async_inflight_peak,
                "resident_requests_peak": self.resident_requests_peak,
                "peak_rss_kb": self.peak_rss_kb,
                "broadcast_publishes": self.broadcast_publishes,
                "broadcast_bytes": self.broadcast_bytes,
                "shm_attach": self.shm_attach,
                "coalesce_flushes": self.coalesce_flushes,
                "coalesce_merged": self.coalesce_merged,
                "coalesce_prompts": self.coalesce_prompts,
                "speculation_launched": self.speculation_launched,
                "speculation_won": self.speculation_won,
                "speculation_wasted": self.speculation_wasted,
                "speculation_fallback_launched": self.speculation_fallback_launched,
                "speculation_fallback_won": self.speculation_fallback_won,
                "failed_requests": self.failed_requests,
                "retries": self.retries,
                "retry_giveups": self.retry_giveups,
                "breaker_opens": self.breaker_opens,
                "breaker_reroutes": self.breaker_reroutes,
                "breaker_short_circuits": self.breaker_short_circuits,
                "journal_hits": self.journal_hits,
                "journal_appends": self.journal_appends,
                "cascade_requests": sum(s["requests"] for s in self._cascade.values()),
                "cascade_escalated": sum(s["escalated"] for s in self._cascade.values()),
                "deadline_shed": self.deadline_shed,
                "deadline_budget_s": round(self.deadline_budget_s, 4),
                "deadline_predicted_s": round(self.deadline_predicted_s, 4),
                "deadline_actual_s": round(self.deadline_actual_s, 4),
            }

    def group_snapshot(self) -> List[Dict[str, object]]:
        """Per-(model, strategy) breakdown, slowest mean latency first.

        ``mean_latency_s`` is summed chunk wall time over requests — it
        includes prompt rendering and scoring, i.e. the *schedulable* cost
        of a request in that group, which is exactly what the cost model
        and a human hunting stragglers both care about.
        """
        with self._lock:
            groups = [
                {
                    "model": model,
                    "strategy": strategy,
                    "requests": int(stats["requests"]),
                    "model_calls": int(stats["calls"]),
                    "cache_hits": int(stats["hits"]),
                    "cache_misses": int(stats["misses"]),
                    "cache_hit_rate": (
                        round(stats["hits"] / (stats["hits"] + stats["misses"]), 4)
                        if stats["hits"] + stats["misses"]
                        else 0.0
                    ),
                    "wall_time_s": round(stats["seconds"], 4),
                    "mean_latency_s": (
                        round(stats["seconds"] / stats["requests"], 6)
                        if stats["requests"]
                        else 0.0
                    ),
                }
                for (model, strategy), stats in self._groups.items()
            ]
        groups.sort(key=lambda g: -g["mean_latency_s"])  # type: ignore[operator]
        return groups

    def cascade_snapshot(self) -> List[Dict[str, object]]:
        """Per-tier cascade breakdown, in the ladder order tiers recorded.

        ``escalation_rate`` is escalated over requests seen;  ``accuracy``
        is correct over labeled resolved records (``None`` when the tier
        resolved nothing labeled), so a cheap tier that answers confidently
        but wrongly is visible at a glance.
        """
        with self._lock:
            tiers = []
            for tier, stats in self._cascade.items():
                requests = stats["requests"]
                labeled = stats["labeled"]
                tiers.append(
                    {
                        "tier": tier,
                        "requests": requests,
                        "resolved": stats["resolved"],
                        "escalated": stats["escalated"],
                        "escalation_rate": (
                            round(stats["escalated"] / requests, 4) if requests else 0.0
                        ),
                        "labeled": labeled,
                        "accuracy": (
                            round(stats["correct"] / labeled, 4) if labeled else None
                        ),
                    }
                )
        return tiers

    def format_group_stats(self, top_k: int = 3) -> str:
        """The top-k slowest (model, strategy) groups, one line each.

        Returns an empty string when no groups were recorded (e.g. a run
        of pure non-LLM work through ``engine.map``).
        """
        groups = self.group_snapshot()
        if not groups or top_k < 1:
            return ""
        shown = groups[:top_k]
        lines = [f"[engine] slowest groups (top {len(shown)} of {len(groups)}):"]
        for group in shown:
            lines.append(
                f"[engine]   {group['model']}/{group['strategy']}: "
                f"requests={group['requests']} "
                f"model_calls={group['model_calls']} "
                f"mean={group['mean_latency_s'] * 1000:.1f}ms/req "
                f"cache_hit_rate={group['cache_hit_rate'] * 100:.1f}%"
            )
        return "\n".join(lines)

    def format_stats(
        self,
        *,
        executor_name: Optional[str] = None,
        since: Optional[Dict[str, float]] = None,
    ) -> str:
        """One-line human-readable summary (printed by the CLI).

        ``since`` — an earlier :meth:`snapshot` — turns the cumulative
        counters into a delta, so a shared engine can report per-phase
        stats (the CLI's per-table lines under ``repro all``).
        """
        snap = self.snapshot()
        if since is not None:
            for key in (
                "requests",
                "model_calls",
                "wire_calls",
                "cache_hits",
                "cache_misses",
                "runs",
                "broadcast_publishes",
                "broadcast_bytes",
                "shm_attach",
                "coalesce_flushes",
                "coalesce_merged",
                "coalesce_prompts",
                "speculation_launched",
                "speculation_won",
                "speculation_wasted",
                "speculation_fallback_launched",
                "speculation_fallback_won",
                "failed_requests",
                "retries",
                "retry_giveups",
                "breaker_opens",
                "breaker_reroutes",
                "breaker_short_circuits",
                "journal_hits",
                "journal_appends",
                "cascade_requests",
                "cascade_escalated",
                "deadline_shed",
            ):
                snap[key] -= since.get(key, 0)
            snap["wall_time_s"] = round(snap["wall_time_s"] - since.get("wall_time_s", 0.0), 4)
            lookups = snap["cache_hits"] + snap["cache_misses"]
            snap["cache_hit_rate"] = round(snap["cache_hits"] / lookups, 4) if lookups else 0.0
            snap["requests_per_second"] = (
                round(snap["requests"] / snap["wall_time_s"], 2)
                if snap["wall_time_s"] > 0
                else 0.0
            )
        parts = []
        if executor_name:
            parts.append(f"executor={executor_name}")
        parts.append(f"requests={snap['requests']}")
        parts.append(f"model_calls={snap['model_calls']}")
        parts.append(f"wire_calls={snap['wire_calls']}")
        parts.append(f"cache_hit_rate={snap['cache_hit_rate'] * 100:.1f}%")
        parts.append(f"wall={snap['wall_time_s']:.2f}s")
        if snap["requests_per_second"]:
            parts.append(f"throughput={snap['requests_per_second']:.1f} req/s")
        if snap["async_inflight_peak"]:
            parts.append(f"inflight_peak={snap['async_inflight_peak']}")
        if snap["resident_requests_peak"]:
            parts.append(f"resident_peak={snap['resident_requests_peak']}")
        if snap["peak_rss_kb"]:
            parts.append(f"rss_peak={snap['peak_rss_kb'] / 1024:.1f}MB")
        if snap["broadcast_publishes"]:
            parts.append(
                f"broadcast={snap['broadcast_publishes']} publishes/"
                f"{snap['broadcast_bytes']}B shm_attach={snap['shm_attach']}"
            )
        if snap["coalesce_flushes"]:
            parts.append(
                f"coalesced={snap['coalesce_merged']} calls into "
                f"{snap['coalesce_flushes']} flushes"
            )
        if snap["speculation_launched"]:
            segment = (
                f"speculation={snap['speculation_launched']} launched/"
                f"{snap['speculation_won']} won/{snap['speculation_wasted']} wasted"
            )
            if snap["speculation_fallback_launched"]:
                segment += (
                    f" (fallback {snap['speculation_fallback_launched']} launched/"
                    f"{snap['speculation_fallback_won']} won)"
                )
            parts.append(segment)
        if snap["retries"] or snap["retry_giveups"]:
            parts.append(
                f"retries={snap['retries']} giveups={snap['retry_giveups']}"
            )
        if snap["failed_requests"]:
            parts.append(f"failed={snap['failed_requests']}")
        if (
            snap["breaker_opens"]
            or snap["breaker_reroutes"]
            or snap["breaker_short_circuits"]
        ):
            parts.append(
                f"breaker={snap['breaker_opens']} opened/"
                f"{snap['breaker_reroutes']} rerouted/"
                f"{snap['breaker_short_circuits']} short-circuited"
            )
        if snap["journal_hits"] or snap["journal_appends"]:
            parts.append(
                f"journal={snap['journal_hits']} replayed/"
                f"{snap['journal_appends']} appended"
            )
        if snap["cascade_requests"]:
            tiers = self.cascade_snapshot()
            rendered = ",".join(
                f"{tier['tier']}:{tier['resolved']}/{tier['requests']}" for tier in tiers
            )
            parts.append(f"cascade={rendered} escalated={snap['cascade_escalated']}")
        if snap["deadline_budget_s"]:
            parts.append(
                f"deadline={snap['deadline_budget_s']:.2f}s "
                f"predicted={snap['deadline_predicted_s']:.2f}s "
                f"actual={snap['deadline_actual_s']:.2f}s "
                f"shed={snap['deadline_shed']}"
            )
        return "[engine] " + " ".join(parts)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<EngineTelemetry {self.snapshot()}>"
