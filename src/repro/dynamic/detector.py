"""Race detection over a recorded execution trace.

The analysis mirrors what segment/lockset-based dynamic tools (Intel
Inspector, Archer) do:

* two accesses can only race when they target the same address, come from the
  same parallel-region instance, and at least one is a write;
* accesses of the same thread (and outside tasks) are ordered by program
  order;
* accesses in different barrier epochs are ordered by the barrier between
  them;
* accesses holding a common lock / critical region, both-atomic accesses and
  both-``ordered`` accesses are mutually excluded;
* explicit tasks are concurrent with their parent's continuation until the
  matching ``taskwait`` and with sibling tasks of the same task sequence,
  unless ``depend`` clauses order them.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from itertools import combinations
from typing import Dict, List, Optional, Sequence, Tuple

from repro.dynamic.events import AccessEvent, ExecutionTrace

__all__ = ["DynamicRacePair", "DynamicRaceReport", "detect_races"]


@dataclass(frozen=True)
class DynamicRacePair:
    """A pair of conflicting concurrent accesses found in a trace."""

    first: AccessEvent
    second: AccessEvent

    def variable(self) -> str:
        return self.first.variable

    def describe(self) -> str:
        a, b = self.first, self.second
        return (
            f"{a.expr_text}@{a.line}:{a.col}:{a.operation} vs. "
            f"{b.expr_text}@{b.line}:{b.col}:{b.operation}"
        )


@dataclass
class DynamicRaceReport:
    """Result of analysing one execution trace."""

    has_race: bool
    pairs: List[DynamicRacePair] = field(default_factory=list)
    events_analyzed: int = 0
    addresses_analyzed: int = 0

    def variables(self) -> List[str]:
        seen: List[str] = []
        for pair in self.pairs:
            if pair.variable() not in seen:
                seen.append(pair.variable())
        return seen


def _tasks_ordered(a: AccessEvent, b: AccessEvent) -> bool:
    """Ordering decision for events where at least one runs inside a task."""
    ta, tb = a.task, b.task
    if ta is not None and tb is not None:
        if ta.task_id == tb.task_id:
            return True
        if ta.task_id in tb.ordered_after or tb.task_id in ta.ordered_after:
            return True
        # Tasks separated by a taskwait on the creating context are ordered.
        if ta.creator_thread == tb.creator_thread and ta.seq != tb.seq:
            return True
        return False
    # exactly one of the two is a task; the other is a plain (parent) access
    task, plain = (ta, b) if ta is not None else (tb, a)
    if plain.thread != task.creator_thread:
        # A task and an unrelated thread of the same region: ordered only by
        # barrier epochs, handled by the caller.
        return False
    if plain.task_seq > task.seq:
        return True  # the parent already waited for this task generation
    if plain.step <= task.creation_step:
        return True  # the parent access happened before the task was created
    return False


def _concurrent(a: AccessEvent, b: AccessEvent) -> bool:
    """Can the two events execute concurrently?"""
    if a.region != b.region:
        return False
    if a.task is None and b.task is None:
        if a.thread == b.thread:
            return False
        return a.epoch == b.epoch
    if _tasks_ordered(a, b):
        return False
    if a.thread != b.thread and a.epoch != b.epoch:
        return False
    return True


def _mutually_excluded(a: AccessEvent, b: AccessEvent) -> bool:
    """Do the two events hold protection that prevents them from overlapping?"""
    if a.atomic and b.atomic:
        return True
    if a.locks & b.locks:
        return True
    if a.ordered and b.ordered:
        return True
    return False


def _dedupe_key(event: AccessEvent) -> Tuple:
    """Events identical under this key behave identically for race purposes."""
    return (
        event.thread,
        event.task.task_id if event.task else None,
        event.task_seq,
        event.region,
        event.epoch,
        event.is_write,
        event.locks,
        event.atomic,
        event.ordered,
        event.line,
        event.col,
    )


def detect_races(
    trace: ExecutionTrace,
    *,
    max_pairs: int = 32,
    max_events_per_address: int = 512,
) -> DynamicRaceReport:
    """Analyse a trace and report conflicting concurrent access pairs.

    Events are first grouped by address, then de-duplicated by the
    synchronization-relevant key so that long loops do not blow up the
    pairwise check.  Reported pairs are unique per (line, col, operation)
    combination of the two sides.
    """
    report = DynamicRaceReport(has_race=False, events_analyzed=len(trace.events))

    by_address: Dict[str, Dict[Tuple, AccessEvent]] = defaultdict(dict)
    writes_seen: Dict[str, bool] = defaultdict(bool)
    for event in trace.events:
        bucket = by_address[event.address]
        if len(bucket) < max_events_per_address:
            bucket.setdefault(_dedupe_key(event), event)
        if event.is_write:
            writes_seen[event.address] = True

    report.addresses_analyzed = len(by_address)
    reported: set = set()

    for address, bucket in by_address.items():
        if not writes_seen[address]:
            continue
        events = list(bucket.values())
        for a, b in combinations(events, 2):
            if len(report.pairs) >= max_pairs:
                break
            if not (a.is_write or b.is_write):
                continue
            if not _concurrent(a, b):
                continue
            if _mutually_excluded(a, b):
                continue
            signature = tuple(sorted([(a.line, a.col, a.operation), (b.line, b.col, b.operation)]))
            if signature in reported:
                continue
            reported.add(signature)
            report.pairs.append(DynamicRacePair(first=a, second=b))
        if len(report.pairs) >= max_pairs:
            break

    report.has_race = bool(report.pairs)
    return report
