"""Inspector-like dynamic race detector facade.

:class:`InspectorLikeDetector` is the "traditional tool" row of the paper's
Table 3.  Like Intel Inspector it executes the program under instrumentation
(here: the :class:`~repro.dynamic.interpreter.Interpreter`) and analyses the
observed accesses; it can repeat the run under several schedules and team
sizes to expose schedule-dependent conflicts, and it degrades gracefully
(reporting "no race observed") when a program cannot be executed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.corpus.microbenchmark import Microbenchmark
from repro.dynamic.detector import DynamicRacePair, DynamicRaceReport, detect_races
from repro.dynamic.interpreter import Interpreter, InterpreterError, InterpreterLimits

__all__ = ["InspectorRunResult", "InspectorLikeDetector"]


@dataclass
class InspectorRunResult:
    """Outcome of analysing one program."""

    name: str
    has_race: bool
    pairs: List[DynamicRacePair] = field(default_factory=list)
    runs: int = 0
    failed: bool = False
    failure_reason: Optional[str] = None

    def variables(self) -> List[str]:
        seen: List[str] = []
        for pair in self.pairs:
            if pair.variable() not in seen:
                seen.append(pair.variable())
        return seen

    @property
    def confidence(self) -> float:
        """Self-assessed reliability of the verdict, in [0, 1].

        The interpreter under-approximates: a witnessed conflict is close to
        ground truth, while a clean run only covers the schedules actually
        executed.  Failed runs degrade confidence down to zero when nothing
        executed at all.
        """
        if self.has_race:
            return 0.95
        if self.failed:
            return 0.0 if self.runs <= 0 else 0.4
        if self.runs > 0:
            return 0.6
        return 0.0


class InspectorLikeDetector:
    """Dynamic race detector facade over the OpenMP interpreter.

    Parameters
    ----------
    schedules:
        Worksharing schedules to try; conflicts found under any schedule are
        unioned, mimicking Inspector's repeated-run usage on DataRaceBench.
    team_sizes:
        Thread counts to execute with.  ``None`` entries mean "use the
        benchmark's own suggested thread count".
    limits:
        Interpreter execution limits.
    """

    def __init__(
        self,
        *,
        schedules: Sequence[str] = ("static", "roundrobin"),
        team_sizes: Sequence[Optional[int]] = (None,),
        limits: Optional[InterpreterLimits] = None,
    ) -> None:
        if not schedules:
            raise ValueError("at least one schedule is required")
        self.schedules = tuple(schedules)
        self.team_sizes = tuple(team_sizes) or (None,)
        self.limits = limits or InterpreterLimits()

    # -- public API ---------------------------------------------------------------

    def analyze_benchmark(self, bench: Microbenchmark) -> InspectorRunResult:
        """Run the detector on a corpus microbenchmark."""
        return self.analyze_source(bench.code, name=bench.name, num_threads=bench.num_threads)

    def analyze_source(
        self, source: str, *, name: str = "<source>", num_threads: int = 4
    ) -> InspectorRunResult:
        """Run the detector on raw C source."""
        result = InspectorRunResult(name=name, has_race=False)
        seen_signatures = set()
        for team in self.team_sizes:
            threads = team if team is not None else num_threads
            for schedule in self.schedules:
                interpreter = Interpreter(
                    num_threads=max(2, threads), schedule=schedule, limits=self.limits
                )
                try:
                    trace = interpreter.run_source(source)
                except InterpreterError as exc:
                    result.failed = True
                    result.failure_reason = str(exc)
                    continue
                result.runs += 1
                report = detect_races(trace)
                for pair in report.pairs:
                    signature = tuple(
                        sorted(
                            [
                                (pair.first.line, pair.first.col, pair.first.operation),
                                (pair.second.line, pair.second.col, pair.second.operation),
                            ]
                        )
                    )
                    if signature not in seen_signatures:
                        seen_signatures.add(signature)
                        result.pairs.append(pair)
        result.has_race = bool(result.pairs)
        return result

    def predict(self, bench: Microbenchmark) -> bool:
        """Binary prediction used by the evaluation harness."""
        return self.analyze_benchmark(bench).has_race
