"""Event records produced by the OpenMP interpreter.

Every access to *shared* storage performed inside a parallel region becomes
an :class:`AccessEvent`.  The detector never looks at the program again: all
the information needed to decide concurrency and protection is carried on the
event (barrier epoch, held locks, atomicity, ordered construct, task
lineage).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional, Tuple

__all__ = ["AccessEvent", "TaskInfo", "ExecutionTrace"]


@dataclass(frozen=True)
class TaskInfo:
    """Identity and ordering metadata of an explicit OpenMP task."""

    task_id: int
    creator_thread: int
    creation_step: int
    seq: int
    ordered_after: FrozenSet[int] = frozenset()


@dataclass(frozen=True)
class AccessEvent:
    """One dynamic access to shared storage.

    Attributes
    ----------
    address:
        Canonical storage address, e.g. ``"sum"`` or ``"a[17]"``.
    variable, expr_text, line, col, is_write:
        Source-level identity of the access (used to report race pairs in the
        same form the ground truth uses).
    thread:
        Executing thread id within the parallel region's team.
    region:
        Index of the parallel region instance (regions never overlap in time,
        so events from different regions cannot race).
    epoch:
        Barrier epoch of the executing thread at the time of the access.
        Events of different epochs are ordered by the barrier in between.
    step:
        Per-thread monotonically increasing counter (program order).
    locks:
        Names of OpenMP locks and critical regions held (unnamed ``critical``
        is represented as ``"__critical__"``).
    atomic, ordered:
        Whether the access is inside an ``atomic`` / ``ordered`` construct.
    task:
        :class:`TaskInfo` when the access runs inside an explicit task.
    task_seq:
        The executing context's taskwait sequence number (used to order a
        parent's accesses against tasks it has already waited for).
    """

    address: str
    variable: str
    expr_text: str
    line: int
    col: int
    is_write: bool
    thread: int
    region: int
    epoch: int
    step: int
    locks: FrozenSet[str] = frozenset()
    atomic: bool = False
    ordered: bool = False
    task: Optional[TaskInfo] = None
    task_seq: int = 0

    @property
    def operation(self) -> str:
        return "W" if self.is_write else "R"


@dataclass
class ExecutionTrace:
    """The full event trace of one interpreted execution."""

    events: List[AccessEvent] = field(default_factory=list)
    num_threads: int = 1
    steps_executed: int = 0
    regions_executed: int = 0
    finished: bool = True

    def append(self, event: AccessEvent) -> None:
        self.events.append(event)

    def addresses(self) -> Tuple[str, ...]:
        return tuple({e.address for e in self.events})

    def __len__(self) -> int:
        return len(self.events)
