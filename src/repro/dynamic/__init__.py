"""Dynamic (execution-based) race detection substrate.

This package plays the role of the commercial dynamic tools the paper uses
as its traditional baseline (Intel Inspector, ThreadSanitizer): it *runs*
each OpenMP microbenchmark on a simulated thread team, records every access
to shared storage together with its synchronization context, and then checks
conflicting accesses for concurrency using a segment (barrier-epoch) +
lockset analysis over the recorded trace.

Modules
-------
``events``
    The access/synchronization event records produced by the interpreter.
``interpreter``
    An AST interpreter for the corpus language subset with OpenMP semantics
    (parallel regions, worksharing loops, sections, single/master, critical,
    atomic, ordered, locks, tasks and taskwait).
``detector``
    The happens-before/lockset analysis over a recorded trace.
``inspector``
    The :class:`InspectorLikeDetector` facade used by the Table 3 experiment.
"""

from repro.dynamic.events import AccessEvent, ExecutionTrace
from repro.dynamic.interpreter import Interpreter, InterpreterError, InterpreterLimits
from repro.dynamic.detector import DynamicRacePair, DynamicRaceReport, detect_races
from repro.dynamic.inspector import InspectorLikeDetector

__all__ = [
    "AccessEvent",
    "ExecutionTrace",
    "Interpreter",
    "InterpreterError",
    "InterpreterLimits",
    "DynamicRacePair",
    "DynamicRaceReport",
    "detect_races",
    "InspectorLikeDetector",
]
