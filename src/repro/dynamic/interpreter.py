"""AST interpreter with OpenMP semantics for the corpus language subset.

The interpreter executes one microbenchmark with a simulated thread team.
Threads of a parallel region are executed one after another (thread 0's whole
traversal of the region body, then thread 1's, ...): for race *detection* the
precise interleaving is irrelevant because the detector reasons about
concurrency from barrier epochs, lock sets and task lineage recorded on each
event, exactly like segment/lockset-based commercial tools do.

Supported OpenMP constructs: ``parallel`` (with ``num_threads``), worksharing
``for`` (static and round-robin schedules, ``nowait``, ``reduction``,
``private``/``firstprivate``/``lastprivate``/``linear``), combined
``parallel for [simd]``, ``simd``, ``sections``/``section``, ``single``,
``master``, ``critical`` (named and unnamed), ``atomic`` (with modifiers),
``ordered``, ``barrier``, ``task`` (with ``depend``, ``shared``,
``firstprivate``), ``taskwait``, and the lock API
(``omp_init_lock``/``omp_set_lock``/``omp_unset_lock``/``omp_destroy_lock``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.cparse import ast, parse
from repro.cparse.symbols import build_symbol_table
from repro.dynamic.events import AccessEvent, ExecutionTrace, TaskInfo

__all__ = ["Interpreter", "InterpreterError", "InterpreterLimits"]


class InterpreterError(RuntimeError):
    """Raised for unsupported constructs or runtime errors during interpretation."""


class _BreakSignal(Exception):
    pass


class _ContinueSignal(Exception):
    pass


class _ReturnSignal(Exception):
    def __init__(self, value) -> None:
        super().__init__("return")
        self.value = value


@dataclass(frozen=True)
class InterpreterLimits:
    """Execution limits protecting against runaway loops."""

    max_steps: int = 2_000_000
    max_loop_iterations: int = 100_000


@dataclass
class _ThreadState:
    """Per-thread execution context inside a parallel region."""

    thread_id: int
    team_size: int
    privates: Dict[str, object] = field(default_factory=dict)
    epoch: int = 0
    step: int = 0
    locks: Tuple[str, ...] = ()
    critical: Tuple[str, ...] = ()
    atomic_depth: int = 0
    ordered_depth: int = 0
    task_seq: int = 0
    current_task: Optional[TaskInfo] = None


class Interpreter:
    """Executes a parsed microbenchmark and records shared-access events."""

    #: Reduction identity values per operator.
    _REDUCTION_INIT = {"+": 0, "-": 0, "*": 1, "max": float("-inf"), "min": float("inf"),
                       "|": 0, "&": ~0, "^": 0, "||": 0, "&&": 1}

    def __init__(
        self,
        *,
        num_threads: int = 4,
        schedule: str = "static",
        limits: Optional[InterpreterLimits] = None,
    ) -> None:
        if num_threads < 1:
            raise ValueError("num_threads must be >= 1")
        if schedule not in ("static", "roundrobin"):
            raise ValueError("schedule must be 'static' or 'roundrobin'")
        self.num_threads = num_threads
        self.schedule = schedule
        self.limits = limits or InterpreterLimits()

    # ------------------------------------------------------------------ run --

    def run_source(self, source: str) -> ExecutionTrace:
        """Parse and execute a C source string."""
        return self.run(parse(source))

    def run(self, unit: ast.TranslationUnit) -> ExecutionTrace:
        """Execute ``main`` of an already parsed translation unit."""
        main = unit.main
        if main is None or main.body is None:
            raise InterpreterError("program has no main function")
        self._unit = unit
        self._symbols = build_symbol_table(unit)
        self._memory: Dict[str, object] = {}
        self._trace = ExecutionTrace(num_threads=self.num_threads)
        self._steps = 0
        self._region_counter = 0
        self._task_counter = 0
        self._depend_last_out: Dict[str, int] = {}
        self._parallel_state: Optional[_ThreadState] = None

        for decl in unit.globals:
            self._exec_declaration(decl, None)
        try:
            self._exec_stmt(main.body, None)
        except _ReturnSignal:
            pass
        self._trace.steps_executed = self._steps
        self._trace.regions_executed = self._region_counter
        return self._trace

    # ------------------------------------------------------------- plumbing --

    def _tick(self) -> None:
        self._steps += 1
        if self._steps > self.limits.max_steps:
            raise InterpreterError("execution step limit exceeded")

    def _is_private(self, name: str, state: Optional[_ThreadState]) -> bool:
        return state is not None and name in state.privates

    def _read_var(self, name: str, state: Optional[_ThreadState]):
        if self._is_private(name, state):
            return state.privates[name]
        if name in self._memory:
            return self._memory[name]
        raise InterpreterError(f"read of undeclared variable {name!r}")

    def _write_var(self, name: str, value, state: Optional[_ThreadState]) -> None:
        if self._is_private(name, state):
            state.privates[name] = value
            return
        self._memory[name] = value

    # -------------------------------------------------------------- events --

    def _emit(
        self,
        state: Optional[_ThreadState],
        *,
        address: str,
        variable: str,
        expr_text: str,
        loc: ast.SourceLoc,
        is_write: bool,
    ) -> None:
        if state is None:
            return  # sequential accesses cannot race
        state.step += 1
        task = state.current_task
        self._trace.append(
            AccessEvent(
                address=address,
                variable=variable,
                expr_text=expr_text,
                line=loc.line,
                col=loc.col,
                is_write=is_write,
                thread=state.thread_id,
                region=self._region_counter,
                epoch=state.epoch,
                step=state.step,
                locks=frozenset(state.locks) | frozenset(state.critical),
                atomic=state.atomic_depth > 0,
                ordered=state.ordered_depth > 0,
                task=task,
                task_seq=state.task_seq,
            )
        )

    # --------------------------------------------------------- declarations --

    def _default_value(self, type_name: str):
        return 0.0 if type_name in ("float", "double") else 0

    def _alloc_array(self, dims: List[int], type_name: str):
        if not dims:
            return self._default_value(type_name)
        head, *rest = dims
        return [self._alloc_array(rest, type_name) for _ in range(head)]

    def _exec_declaration(self, decl: ast.Declaration, state: Optional[_ThreadState]) -> None:
        for declarator in decl.declarators:
            dims: List[int] = []
            for dim_expr in declarator.array_dims:
                if dim_expr is None:
                    dims.append(0)
                else:
                    dims.append(int(self._eval(dim_expr, state)))
            if dims:
                value = self._alloc_array(dims, decl.type_name)
            elif declarator.init is not None:
                value = self._eval(declarator.init, state)
            else:
                value = self._default_value(decl.type_name)
            if declarator.init is not None and dims:
                init = declarator.init
                if isinstance(init, ast.Call) and init.name == "__init_list__":
                    for idx, element in enumerate(init.args[: dims[0]]):
                        value[idx] = self._eval(element, state)
            if state is not None:
                # Declarations inside a parallel construct are block locals,
                # private to the executing thread/task.
                state.privates[declarator.name] = value
            else:
                self._memory[declarator.name] = value

    # ---------------------------------------------------------- expressions --

    def _eval(self, expr: ast.Expr, state: Optional[_ThreadState]):
        self._tick()
        if isinstance(expr, ast.IntLiteral):
            return expr.value
        if isinstance(expr, ast.FloatLiteral):
            return expr.value
        if isinstance(expr, ast.StringLiteral):
            return expr.value
        if isinstance(expr, ast.Identifier):
            value = self._read_var(expr.name, state)
            if not self._is_private(expr.name, state) and not isinstance(value, list):
                self._emit(
                    state,
                    address=expr.name,
                    variable=expr.name,
                    expr_text=expr.name,
                    loc=expr.loc,
                    is_write=False,
                )
            return value
        if isinstance(expr, ast.ArraySubscript):
            return self._eval_subscript(expr, state, emit_read=True)[2]
        if isinstance(expr, ast.BinaryOp):
            return self._eval_binary(expr, state)
        if isinstance(expr, ast.UnaryOp):
            value = self._eval(expr.operand, state)
            if expr.op == "-":
                return -value
            if expr.op == "+":
                return value
            if expr.op == "!":
                return 0 if value else 1
            if expr.op == "~":
                return ~int(value)
            raise InterpreterError(f"unsupported unary operator {expr.op}")
        if isinstance(expr, ast.Assignment):
            return self._eval_assignment(expr, state)
        if isinstance(expr, ast.IncDec):
            return self._eval_incdec(expr, state)
        if isinstance(expr, ast.Call):
            return self._eval_call(expr, state)
        if isinstance(expr, ast.AddressOf):
            operand = expr.operand
            if isinstance(operand, ast.Identifier):
                return ("&", operand.name)
            return ("&", "<expr>")
        if isinstance(expr, ast.Deref):
            return self._eval(expr.operand, state)
        if isinstance(expr, ast.ConditionalExpr):
            return (
                self._eval(expr.then, state)
                if self._eval(expr.cond, state)
                else self._eval(expr.other, state)
            )
        raise InterpreterError(f"unsupported expression {type(expr).__name__}")

    def _eval_binary(self, expr: ast.BinaryOp, state: Optional[_ThreadState]):
        op = expr.op
        if op == "&&":
            return 1 if (self._eval(expr.left, state) and self._eval(expr.right, state)) else 0
        if op == "||":
            return 1 if (self._eval(expr.left, state) or self._eval(expr.right, state)) else 0
        if op == ",":
            self._eval(expr.left, state)
            return self._eval(expr.right, state)
        left = self._eval(expr.left, state)
        right = self._eval(expr.right, state)
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            if right == 0:
                raise InterpreterError("division by zero")
            if isinstance(left, int) and isinstance(right, int):
                return left // right
            return left / right
        if op == "%":
            if right == 0:
                raise InterpreterError("modulo by zero")
            return int(left) % int(right)
        if op == "==":
            return 1 if left == right else 0
        if op == "!=":
            return 1 if left != right else 0
        if op == "<":
            return 1 if left < right else 0
        if op == ">":
            return 1 if left > right else 0
        if op == "<=":
            return 1 if left <= right else 0
        if op == ">=":
            return 1 if left >= right else 0
        if op == "&":
            return int(left) & int(right)
        if op == "|":
            return int(left) | int(right)
        if op == "^":
            return int(left) ^ int(right)
        if op == "<<":
            return int(left) << int(right)
        if op == ">>":
            return int(left) >> int(right)
        raise InterpreterError(f"unsupported binary operator {op}")

    def _render(self, expr: ast.Expr) -> str:
        from repro.analysis.accesses import render_expr

        return render_expr(expr)

    def _eval_subscript(self, expr: ast.ArraySubscript, state, *, emit_read: bool):
        """Resolve an array subscript.  Returns (container, index, value)."""
        root = expr.root_name()
        if root is None:
            raise InterpreterError("cannot resolve array expression")
        indices = [int(self._eval(ix, state)) for ix in expr.indices()]
        container = self._read_var(root, state)
        shared = not self._is_private(root, state)
        target = container
        for depth, index in enumerate(indices[:-1]):
            try:
                target = target[index]
            except (IndexError, TypeError) as exc:
                raise InterpreterError(f"bad subscript on {root}: {exc}") from exc
        last = indices[-1]
        try:
            value = target[last]
        except (IndexError, TypeError) as exc:
            raise InterpreterError(f"bad subscript on {root}: {exc}") from exc
        address = f"{root}[{','.join(str(i) for i in indices)}]"
        if shared and emit_read:
            self._emit(
                state,
                address=address,
                variable=root,
                expr_text=self._render(expr),
                loc=expr.loc,
                is_write=False,
            )
        return (target, last, value) if shared else (target, last, value)

    def _assign_target(self, target: ast.Expr, value, state: Optional[_ThreadState]) -> None:
        if isinstance(target, ast.Identifier):
            shared = not self._is_private(target.name, state)
            self._write_var(target.name, value, state)
            if shared:
                self._emit(
                    state,
                    address=target.name,
                    variable=target.name,
                    expr_text=target.name,
                    loc=target.loc,
                    is_write=True,
                )
            return
        if isinstance(target, ast.ArraySubscript):
            root = target.root_name()
            indices = [int(self._eval(ix, state)) for ix in target.indices()]
            container = self._read_var(root, state)
            shared = not self._is_private(root, state)
            dest = container
            for index in indices[:-1]:
                dest = dest[index]
            try:
                dest[indices[-1]] = value
            except (IndexError, TypeError) as exc:
                raise InterpreterError(f"bad subscript store on {root}: {exc}") from exc
            if shared:
                address = f"{root}[{','.join(str(i) for i in indices)}]"
                self._emit(
                    state,
                    address=address,
                    variable=root,
                    expr_text=self._render(target),
                    loc=target.loc,
                    is_write=True,
                )
            return
        if isinstance(target, ast.Deref):
            raise InterpreterError("pointer stores are not supported")
        raise InterpreterError(f"unsupported assignment target {type(target).__name__}")

    def _eval_assignment(self, expr: ast.Assignment, state: Optional[_ThreadState]):
        if expr.is_compound:
            current = self._eval(expr.target, state)
            rhs = self._eval(expr.value, state)
            op = expr.op[:-1]
            combined = self._eval_binary_value(op, current, rhs)
            self._assign_target(expr.target, combined, state)
            return combined
        value = self._eval(expr.value, state)
        self._assign_target(expr.target, value, state)
        return value

    def _eval_binary_value(self, op: str, left, right):
        fake = ast.BinaryOp(
            loc=ast.SourceLoc(0, 0), op=op,
            left=ast.IntLiteral(loc=ast.SourceLoc(0, 0), value=0),
            right=ast.IntLiteral(loc=ast.SourceLoc(0, 0), value=0),
        )
        # Reuse the operator table without re-evaluating operands.
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            if right == 0:
                raise InterpreterError("division by zero")
            if isinstance(left, int) and isinstance(right, int):
                return left // right
            return left / right
        if op == "%":
            return int(left) % int(right)
        if op == "&":
            return int(left) & int(right)
        if op == "|":
            return int(left) | int(right)
        if op == "^":
            return int(left) ^ int(right)
        if op == "<<":
            return int(left) << int(right)
        if op == ">>":
            return int(left) >> int(right)
        raise InterpreterError(f"unsupported compound operator {op}{fake and '='}")

    def _eval_incdec(self, expr: ast.IncDec, state: Optional[_ThreadState]):
        current = self._eval(expr.operand, state)
        delta = 1 if expr.op == "++" else -1
        updated = current + delta
        self._assign_target(expr.operand, updated, state)
        return updated if expr.prefix else current

    def _eval_call(self, expr: ast.Call, state: Optional[_ThreadState]):
        name = expr.name
        if name == "printf":
            for arg in expr.args[1:]:
                self._eval(arg, state)
            return 0
        if name in ("omp_init_lock", "omp_destroy_lock", "omp_init_nest_lock",
                    "omp_destroy_nest_lock"):
            return 0
        if name in ("omp_set_lock", "omp_set_nest_lock"):
            lock = self._lock_name(expr)
            if state is not None and lock is not None:
                state.locks = state.locks + (lock,)
            return 0
        if name in ("omp_unset_lock", "omp_unset_nest_lock"):
            lock = self._lock_name(expr)
            if state is not None and lock is not None:
                state.locks = tuple(l for l in state.locks if l != lock)
            return 0
        if name == "omp_get_thread_num":
            return state.thread_id if state is not None else 0
        if name == "omp_get_num_threads":
            return state.team_size if state is not None else 1
        if name == "omp_get_wtime":
            return float(self._steps)
        if name == "sizeof":
            return 8
        if name in ("fabs", "abs"):
            return abs(self._eval(expr.args[0], state))
        if name == "sqrt":
            return self._eval(expr.args[0], state) ** 0.5
        if name == "__init_list__":
            return [self._eval(a, state) for a in expr.args]
        # user-defined helper function
        fn = self._unit.function(name)
        if fn is not None:
            return self._call_user_function(fn, expr, state)
        # Unknown library call: evaluate arguments for their side effects.
        for arg in expr.args:
            self._eval(arg, state)
        return 0

    def _lock_name(self, expr: ast.Call) -> Optional[str]:
        if not expr.args:
            return None
        arg = expr.args[0]
        if isinstance(arg, ast.AddressOf) and isinstance(arg.operand, ast.Identifier):
            return arg.operand.name
        if isinstance(arg, ast.Identifier):
            return arg.name
        return None

    def _call_user_function(self, fn: ast.FunctionDef, call: ast.Call, state):
        saved_memory_keys = set(self._memory)
        # Arguments are passed by value into temporary globals (the corpus
        # uses helper functions only for scalar work).
        for param, arg in zip(fn.params, call.args):
            self._memory[param.name] = self._eval(arg, state)
        try:
            self._exec_stmt(fn.body, state)
            result = 0
        except _ReturnSignal as signal:
            result = signal.value if signal.value is not None else 0
        for key in set(self._memory) - saved_memory_keys:
            del self._memory[key]
        return result

    # ----------------------------------------------------------- statements --

    def _exec_stmt(self, stmt: ast.Stmt, state: Optional[_ThreadState]) -> None:
        self._tick()
        if isinstance(stmt, ast.CompoundStmt):
            for child in stmt.body:
                self._exec_stmt(child, state)
            return
        if isinstance(stmt, ast.Declaration):
            self._exec_declaration(stmt, state)
            return
        if isinstance(stmt, ast.ExprStmt):
            self._eval(stmt.expr, state)
            return
        if isinstance(stmt, ast.ForStmt):
            self._exec_for(stmt, state)
            return
        if isinstance(stmt, ast.WhileStmt):
            iterations = 0
            while self._eval(stmt.cond, state):
                iterations += 1
                if iterations > self.limits.max_loop_iterations:
                    raise InterpreterError("while loop iteration limit exceeded")
                try:
                    self._exec_stmt(stmt.body, state)
                except _BreakSignal:
                    break
                except _ContinueSignal:
                    continue
            return
        if isinstance(stmt, ast.IfStmt):
            if self._eval(stmt.cond, state):
                self._exec_stmt(stmt.then, state)
            elif stmt.other is not None:
                self._exec_stmt(stmt.other, state)
            return
        if isinstance(stmt, ast.ReturnStmt):
            value = self._eval(stmt.value, state) if stmt.value is not None else None
            raise _ReturnSignal(value)
        if isinstance(stmt, ast.BreakStmt):
            raise _BreakSignal()
        if isinstance(stmt, ast.ContinueStmt):
            raise _ContinueSignal()
        if isinstance(stmt, ast.NullStmt):
            return
        if isinstance(stmt, ast.OmpStmt):
            self._exec_omp(stmt, state)
            return
        raise InterpreterError(f"unsupported statement {type(stmt).__name__}")

    def _exec_for(self, stmt: ast.ForStmt, state: Optional[_ThreadState]) -> None:
        if stmt.init is not None:
            self._exec_stmt(stmt.init, state)
        iterations = 0
        while stmt.cond is None or self._eval(stmt.cond, state):
            iterations += 1
            if iterations > self.limits.max_loop_iterations:
                raise InterpreterError("for loop iteration limit exceeded")
            try:
                self._exec_stmt(stmt.body, state)
            except _BreakSignal:
                break
            except _ContinueSignal:
                pass
            if stmt.step is not None:
                self._eval(stmt.step, state)
        return

    # --------------------------------------------------------------- OpenMP --

    def _exec_omp(self, stmt: ast.OmpStmt, state: Optional[_ThreadState]) -> None:
        pragma = stmt.pragma
        if pragma.has_directive("parallel") and state is None:
            self._exec_parallel_region(stmt)
            return
        if pragma.has_directive("parallel") and state is not None:
            # Nested parallelism: execute with the existing team (serialized).
            self._exec_parallel_inner(stmt, state)
            return
        if state is None:
            # Orphaned worksharing/simd constructs outside a parallel region
            # execute sequentially on the initial thread.
            if stmt.body is not None:
                self._exec_stmt(stmt.body, state)
            return
        self._exec_parallel_inner(stmt, state)

    # -- region management ---------------------------------------------------

    def _team_size(self, pragma: ast.OmpPragma) -> int:
        clause = pragma.clause("num_threads")
        if clause and clause.arguments:
            try:
                return max(1, int(clause.arguments[0]))
            except ValueError:
                return self.num_threads
        return self.num_threads

    def _apply_data_clauses(self, pragma: ast.OmpPragma, state: _ThreadState) -> Dict[str, Tuple[str, str]]:
        """Populate private storage for clause-listed variables.

        Returns a mapping var -> (kind, op) for variables needing post-region
        handling (lastprivate write-back, reduction merge).
        """
        post: Dict[str, Tuple[str, str]] = {}
        for name in pragma.clause_vars("private"):
            state.privates[name] = 0
        for name in pragma.clause_vars("firstprivate"):
            state.privates[name] = self._memory.get(name, 0)
        for name in pragma.clause_vars("lastprivate"):
            state.privates[name] = self._memory.get(name, 0)
            post[name] = ("lastprivate", "")
        for name in pragma.clause_vars("linear"):
            state.privates[name] = self._memory.get(name, 0)
        for clause in pragma.clauses:
            if clause.name == "reduction":
                op = clause.reduction_op or "+"
                for name in clause.arguments:
                    state.privates[name] = self._REDUCTION_INIT.get(op, 0)
                    post[name] = ("reduction", op)
        return post

    def _merge_post_region(self, post: Dict[str, Tuple[str, str]], states: List[_ThreadState]) -> None:
        for name, (kind, op) in post.items():
            if kind == "lastprivate":
                self._memory[name] = states[-1].privates.get(name, self._memory.get(name, 0))
            elif kind == "reduction":
                total = self._memory.get(name, 0)
                for state in states:
                    value = state.privates.get(name, 0)
                    if op == "+":
                        total = total + value
                    elif op == "*":
                        total = total * value
                    elif op == "max":
                        total = max(total, value)
                    elif op == "min":
                        total = min(total, value)
                    else:
                        total = total + value
                self._memory[name] = total

    def _exec_parallel_region(self, stmt: ast.OmpStmt) -> None:
        pragma = stmt.pragma
        self._region_counter += 1
        team = self._team_size(pragma)
        self._trace.num_threads = max(self._trace.num_threads, team)
        states: List[_ThreadState] = []
        post: Dict[str, Tuple[str, str]] = {}
        for tid in range(team):
            state = _ThreadState(thread_id=tid, team_size=team)
            post = self._apply_data_clauses(pragma, state)
            # Combined parallel-for/sections constructs: the region body *is*
            # the worksharing construct.
            if pragma.has_directive("for") or pragma.has_directive("simd"):
                self._exec_worksharing_for(stmt.body, pragma, state)
            elif pragma.has_directive("sections"):
                self._exec_sections(stmt.body, pragma, state)
            else:
                self._exec_stmt(stmt.body, state)
            states.append(state)
        self._merge_post_region(post, states)

    def _exec_parallel_inner(self, stmt: ast.OmpStmt, state: _ThreadState) -> None:
        """Execute a non-region OpenMP construct inside a parallel region."""
        pragma = stmt.pragma
        if pragma.has_directive("barrier"):
            state.epoch += 1
            return
        if pragma.has_directive("taskwait"):
            state.task_seq += 1
            return
        if pragma.has_directive("for") or pragma.has_directive("taskloop") or (
            pragma.has_directive("simd") and stmt.body is not None and not pragma.has_directive("task")
        ):
            post = self._apply_data_clauses(pragma, state)
            self._exec_worksharing_for(stmt.body, pragma, state)
            self._merge_post_region(post, [state])
            if pragma.clause("nowait") is None:
                state.epoch += 1
            return
        if pragma.has_directive("sections"):
            self._exec_sections(stmt.body, pragma, state)
            if pragma.clause("nowait") is None:
                state.epoch += 1
            return
        if pragma.has_directive("single"):
            if state.thread_id == 0:
                self._exec_stmt(stmt.body, state)
            if pragma.clause("nowait") is None:
                state.epoch += 1
            return
        if pragma.has_directive("master"):
            if state.thread_id == 0:
                self._exec_stmt(stmt.body, state)
            return
        if pragma.has_directive("critical"):
            name_clause = pragma.clause("name")
            name = name_clause.arguments[0] if name_clause else "__critical__"
            state.critical = state.critical + (name,)
            try:
                self._exec_stmt(stmt.body, state)
            finally:
                state.critical = state.critical[:-1]
            return
        if pragma.has_directive("atomic"):
            state.atomic_depth += 1
            try:
                self._exec_stmt(stmt.body, state)
            finally:
                state.atomic_depth -= 1
            return
        if pragma.has_directive("ordered"):
            state.ordered_depth += 1
            try:
                self._exec_stmt(stmt.body, state)
            finally:
                state.ordered_depth -= 1
            return
        if pragma.has_directive("task"):
            self._exec_task(stmt, state)
            return
        if pragma.has_directive("parallel"):
            # Nested region: run the body on the current thread only.
            if pragma.has_directive("for") or pragma.has_directive("simd"):
                self._exec_worksharing_for(stmt.body, pragma, state)
            elif stmt.body is not None:
                self._exec_stmt(stmt.body, state)
            return
        if stmt.body is not None:
            self._exec_stmt(stmt.body, state)

    # -- worksharing ----------------------------------------------------------

    def _loop_iterations(self, loop: ast.ForStmt, state: _ThreadState) -> Tuple[str, List[int]]:
        """Evaluate the iteration space of a canonical OpenMP loop."""
        var = loop.loop_variable()
        if var is None:
            raise InterpreterError("worksharing loop has no canonical induction variable")
        # start value
        if isinstance(loop.init, ast.Declaration):
            init_expr = loop.init.declarators[0].init
        elif isinstance(loop.init, ast.ExprStmt) and isinstance(loop.init.expr, ast.Assignment):
            init_expr = loop.init.expr.value
        else:
            raise InterpreterError("unsupported worksharing loop initialisation")
        start = int(self._eval(init_expr, state))
        # bound
        cond = loop.cond
        if not isinstance(cond, ast.BinaryOp):
            raise InterpreterError("unsupported worksharing loop condition")
        bound = int(self._eval(cond.right, state))
        op = cond.op
        # step
        step_expr = loop.step
        step = 1
        if isinstance(step_expr, ast.IncDec):
            step = 1 if step_expr.op == "++" else -1
        elif isinstance(step_expr, ast.Assignment) and step_expr.is_compound:
            delta = int(self._eval(step_expr.value, state))
            step = delta if step_expr.op == "+=" else -delta
        iterations: List[int] = []
        value = start
        guard = 0
        while True:
            guard += 1
            if guard > self.limits.max_loop_iterations:
                raise InterpreterError("worksharing loop iteration limit exceeded")
            if op == "<" and not value < bound:
                break
            if op == "<=" and not value <= bound:
                break
            if op == ">" and not value > bound:
                break
            if op == ">=" and not value >= bound:
                break
            if op not in ("<", "<=", ">", ">="):
                raise InterpreterError(f"unsupported loop condition operator {op}")
            iterations.append(value)
            value += step
        return var, iterations

    def _partition(self, iterations: List[int], thread_id: int, team: int, pragma: ast.OmpPragma) -> List[int]:
        schedule_clause = pragma.clause("schedule")
        kind = self.schedule
        if schedule_clause and schedule_clause.arguments:
            requested = schedule_clause.arguments[0]
            kind = "roundrobin" if requested in ("dynamic", "guided") else "static"
        if kind == "roundrobin":
            return iterations[thread_id::team]
        # default static: contiguous chunks
        total = len(iterations)
        chunk = (total + team - 1) // team if total else 0
        start = thread_id * chunk
        return iterations[start : start + chunk]

    def _exec_worksharing_for(self, body: ast.Stmt, pragma: ast.OmpPragma, state: _ThreadState) -> None:
        loop = body
        while isinstance(loop, ast.CompoundStmt) and len(loop.body) == 1:
            loop = loop.body[0]
        if not isinstance(loop, ast.ForStmt):
            # A simd-only construct may wrap a non-canonical body; execute it.
            self._exec_stmt(body, state)
            return
        var, iterations = self._loop_iterations(loop, state)
        mine = self._partition(iterations, state.thread_id, state.team_size, pragma)
        collapse = pragma.clause("collapse")
        # (collapse is accepted but the corpus only parallelizes the outer loop)
        _ = collapse
        # the loop variable is implicitly private
        state.privates.setdefault(var, 0)
        for value in mine:
            state.privates[var] = value
            try:
                self._exec_stmt(loop.body, state)
            except _BreakSignal:
                break
            except _ContinueSignal:
                continue
        if iterations:
            state.privates[var] = iterations[-1] + 1

    def _exec_sections(self, body: ast.Stmt, pragma: ast.OmpPragma, state: _ThreadState) -> None:
        inner = body
        while isinstance(inner, ast.CompoundStmt) and len(inner.body) == 1:
            inner = inner.body[0]
        if not isinstance(inner, ast.CompoundStmt):
            self._exec_stmt(body, state)
            return
        section_index = 0
        for child in inner.body:
            if isinstance(child, ast.OmpStmt) and child.pragma.has_directive("section"):
                owner = section_index % state.team_size
                if owner == state.thread_id and child.body is not None:
                    self._exec_stmt(child.body, state)
                section_index += 1
            else:
                # statements outside explicit sections run on every thread
                self._exec_stmt(child, state)

    # -- tasks ----------------------------------------------------------------

    def _exec_task(self, stmt: ast.OmpStmt, state: _ThreadState) -> None:
        pragma = stmt.pragma
        self._task_counter += 1
        ordered_after = set()
        depend_clause_vars_in: List[str] = []
        depend_clause_vars_out: List[str] = []
        for clause in pragma.clauses:
            if clause.name != "depend" or not clause.arguments:
                continue
            mode = clause.arguments[0]
            names = clause.arguments[1:]
            if mode in ("in", "inout"):
                depend_clause_vars_in.extend(names)
            if mode in ("out", "inout"):
                depend_clause_vars_out.extend(names)
        for name in depend_clause_vars_in:
            if name in self._depend_last_out:
                ordered_after.add(self._depend_last_out[name])
        task = TaskInfo(
            task_id=self._task_counter,
            creator_thread=state.thread_id,
            creation_step=state.step,
            seq=state.task_seq,
            ordered_after=frozenset(ordered_after),
        )
        for name in depend_clause_vars_out:
            self._depend_last_out[name] = task.task_id

        saved_task = state.current_task
        saved_privates = dict(state.privates)
        for name in pragma.clause_vars("firstprivate"):
            state.privates[name] = self._read_var(name, state)
        for name in pragma.clause_vars("private"):
            state.privates[name] = 0
        state.current_task = task
        try:
            if stmt.body is not None:
                self._exec_stmt(stmt.body, state)
        finally:
            state.current_task = saved_task
            state.privates = saved_privates
