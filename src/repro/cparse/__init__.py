"""C-with-OpenMP front end used by every analysis in this repository.

The corpus generator (:mod:`repro.corpus`) emits DataRaceBench-style OpenMP C
microbenchmarks.  This package provides a from-scratch lexer, recursive
descent parser, OpenMP pragma parser and symbol-table pass for exactly that
language subset, producing ASTs with accurate line/column positions.  The
static analyzer, the dynamic race detector and the simulated language models
all consume these ASTs.

Public entry points
-------------------
``tokenize(source)``
    Lex a source string into a list of :class:`~repro.cparse.lexer.Token`.
``parse(source)``
    Parse a source string into a :class:`~repro.cparse.ast.TranslationUnit`.
``parse_pragma(text, line)``
    Parse the text of an ``#pragma omp`` directive into an
    :class:`~repro.cparse.ast.OmpPragma`.
"""

from repro.cparse.lexer import Token, TokenKind, LexError, tokenize
from repro.cparse.parser import ParseError, parse
from repro.cparse.pragma import parse_pragma
from repro.cparse import ast
from repro.cparse.symbols import SymbolTable, Symbol, build_symbol_table

__all__ = [
    "Token",
    "TokenKind",
    "LexError",
    "tokenize",
    "ParseError",
    "parse",
    "parse_pragma",
    "ast",
    "SymbolTable",
    "Symbol",
    "build_symbol_table",
]
