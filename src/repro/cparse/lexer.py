"""Tokenizer for the C-with-OpenMP subset used by the corpus.

The lexer tracks 1-based line and column numbers for every token so that the
analyses built on top of the parser (access extraction, variable-pair ground
truth, dynamic instrumentation) can report source locations in the same
``line:col`` convention DataRaceBench uses in its header comments.

Comments are tokenized (not discarded) because the DRB-ML pipeline needs to
scrape labels out of block comments and later strip them while re-mapping
line numbers (paper §3.1, the ``trimmed_code`` field).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, List

__all__ = ["TokenKind", "Token", "LexError", "Lexer", "tokenize"]


class TokenKind(enum.Enum):
    """Lexical categories produced by :class:`Lexer`."""

    IDENT = "ident"
    KEYWORD = "keyword"
    INT_LIT = "int_lit"
    FLOAT_LIT = "float_lit"
    CHAR_LIT = "char_lit"
    STRING_LIT = "string_lit"
    PUNCT = "punct"
    PRAGMA = "pragma"
    INCLUDE = "include"
    COMMENT = "comment"
    NEWLINE = "newline"
    EOF = "eof"


#: Keywords of the supported C subset.  ``omp_lock_t`` style typedef names are
#: handled as identifiers by the parser's declaration logic.
KEYWORDS = frozenset(
    {
        "int",
        "long",
        "float",
        "double",
        "char",
        "void",
        "unsigned",
        "signed",
        "short",
        "const",
        "static",
        "struct",
        "if",
        "else",
        "for",
        "while",
        "do",
        "return",
        "break",
        "continue",
        "sizeof",
    }
)

#: Multi-character punctuators, longest first so greedy matching is correct.
_PUNCTUATORS = (
    "<<=",
    ">>=",
    "...",
    "==",
    "!=",
    "<=",
    ">=",
    "&&",
    "||",
    "++",
    "--",
    "+=",
    "-=",
    "*=",
    "/=",
    "%=",
    "&=",
    "|=",
    "^=",
    "<<",
    ">>",
    "->",
    "+",
    "-",
    "*",
    "/",
    "%",
    "=",
    "<",
    ">",
    "!",
    "&",
    "|",
    "^",
    "~",
    "?",
    ":",
    ";",
    ",",
    ".",
    "(",
    ")",
    "[",
    "]",
    "{",
    "}",
)


@dataclass(frozen=True)
class Token:
    """A single lexical token.

    Attributes
    ----------
    kind:
        The :class:`TokenKind` category.
    text:
        The exact source text of the token.  For :attr:`TokenKind.PRAGMA`
        tokens this is the full directive text after ``#pragma`` (e.g.
        ``"omp parallel for private(i)"``).
    line:
        1-based source line of the first character.
    col:
        1-based source column of the first character.
    """

    kind: TokenKind
    text: str
    line: int
    col: int

    def is_punct(self, text: str) -> bool:
        """Return ``True`` when this token is the punctuator ``text``."""
        return self.kind is TokenKind.PUNCT and self.text == text

    def is_keyword(self, text: str) -> bool:
        """Return ``True`` when this token is the keyword ``text``."""
        return self.kind is TokenKind.KEYWORD and self.text == text


class LexError(ValueError):
    """Raised when the lexer encounters a character it cannot tokenize."""

    def __init__(self, message: str, line: int, col: int) -> None:
        super().__init__(f"{message} at {line}:{col}")
        self.line = line
        self.col = col


class Lexer:
    """Hand-rolled scanner over a source string.

    The scanner is deliberately simple (no trigraphs, no line continuations
    except inside pragmas, no preprocessor beyond ``#include`` and
    ``#pragma``) because the corpus generator controls the input grammar.
    """

    def __init__(self, source: str) -> None:
        self.source = source
        self.pos = 0
        self.line = 1
        self.col = 1

    # -- low-level cursor helpers -------------------------------------------------

    def _peek(self, offset: int = 0) -> str:
        idx = self.pos + offset
        if idx >= len(self.source):
            return ""
        return self.source[idx]

    def _advance(self, count: int = 1) -> str:
        """Consume ``count`` characters, maintaining line/column bookkeeping."""
        consumed = self.source[self.pos : self.pos + count]
        for ch in consumed:
            if ch == "\n":
                self.line += 1
                self.col = 1
            else:
                self.col += 1
        self.pos += len(consumed)
        return consumed

    def _at_end(self) -> bool:
        return self.pos >= len(self.source)

    # -- token scanners -----------------------------------------------------------

    def _scan_identifier(self) -> Token:
        line, col = self.line, self.col
        start = self.pos
        while self._peek().isalnum() or self._peek() == "_":
            self._advance()
        text = self.source[start : self.pos]
        kind = TokenKind.KEYWORD if text in KEYWORDS else TokenKind.IDENT
        return Token(kind, text, line, col)

    def _scan_number(self) -> Token:
        line, col = self.line, self.col
        start = self.pos
        is_float = False
        while self._peek().isdigit():
            self._advance()
        if self._peek() == "." and self._peek(1).isdigit():
            is_float = True
            self._advance()
            while self._peek().isdigit():
                self._advance()
        if self._peek() in ("e", "E") and (
            self._peek(1).isdigit()
            or (self._peek(1) in "+-" and self._peek(2).isdigit())
        ):
            is_float = True
            self._advance()
            if self._peek() and self._peek() in "+-":
                self._advance()
            while self._peek().isdigit():
                self._advance()
        # Suffixes (f, L, u, ll ...) are consumed but kept in the token text.
        # Note: _peek() returns "" at end of input, which must not match.
        while self._peek() and self._peek() in "fFlLuU":
            is_float = is_float or self._peek() in "fF"
            self._advance()
        text = self.source[start : self.pos]
        kind = TokenKind.FLOAT_LIT if is_float else TokenKind.INT_LIT
        return Token(kind, text, line, col)

    def _scan_string(self, quote: str) -> Token:
        line, col = self.line, self.col
        start = self.pos
        self._advance()  # opening quote
        while not self._at_end() and self._peek() != quote:
            if self._peek() == "\\":
                self._advance()
            self._advance()
        if self._at_end():
            raise LexError("unterminated string literal", line, col)
        self._advance()  # closing quote
        text = self.source[start : self.pos]
        kind = TokenKind.STRING_LIT if quote == '"' else TokenKind.CHAR_LIT
        return Token(kind, text, line, col)

    def _scan_line_comment(self) -> Token:
        line, col = self.line, self.col
        start = self.pos
        while not self._at_end() and self._peek() != "\n":
            self._advance()
        return Token(TokenKind.COMMENT, self.source[start : self.pos], line, col)

    def _scan_block_comment(self) -> Token:
        line, col = self.line, self.col
        start = self.pos
        self._advance(2)  # consume /*
        while not self._at_end() and not (self._peek() == "*" and self._peek(1) == "/"):
            self._advance()
        if self._at_end():
            raise LexError("unterminated block comment", line, col)
        self._advance(2)  # consume */
        return Token(TokenKind.COMMENT, self.source[start : self.pos], line, col)

    def _scan_directive(self) -> Token:
        """Scan ``#include`` and ``#pragma`` lines (with ``\\`` continuations)."""
        line, col = self.line, self.col
        start = self.pos
        self._advance()  # consume '#'
        while not self._at_end() and self._peek() != "\n":
            if self._peek() == "\\" and self._peek(1) == "\n":
                self._advance(2)
                continue
            self._advance()
        text = self.source[start : self.pos]
        body = text[1:].strip()
        if body.startswith("pragma"):
            directive = body[len("pragma") :].strip()
            return Token(TokenKind.PRAGMA, directive, line, col)
        if body.startswith("include"):
            return Token(TokenKind.INCLUDE, body, line, col)
        if body.startswith("define") or body.startswith("ifdef") or body.startswith(
            "ifndef"
        ) or body.startswith("endif") or body.startswith("else"):
            # Treat other preprocessor lines as comments: the analyses ignore
            # them but the trimming pipeline keeps their line positions.
            return Token(TokenKind.COMMENT, text, line, col)
        raise LexError(f"unsupported preprocessor directive {body.split()[0]!r}", line, col)

    # -- public API ---------------------------------------------------------------

    def tokens(self) -> Iterator[Token]:
        """Yield every token in the source, ending with a single EOF token."""
        while not self._at_end():
            ch = self._peek()
            if ch in " \t\r":
                self._advance()
                continue
            if ch == "\n":
                self._advance()
                continue
            if ch == "#":
                yield self._scan_directive()
                continue
            if ch == "/" and self._peek(1) == "/":
                yield self._scan_line_comment()
                continue
            if ch == "/" and self._peek(1) == "*":
                yield self._scan_block_comment()
                continue
            if ch.isalpha() or ch == "_":
                yield self._scan_identifier()
                continue
            if ch.isdigit():
                yield self._scan_number()
                continue
            if ch == "." and self._peek(1).isdigit():
                yield self._scan_number()
                continue
            if ch in "\"'":
                yield self._scan_string(ch)
                continue
            matched = False
            for punct in _PUNCTUATORS:
                if self.source.startswith(punct, self.pos):
                    line, col = self.line, self.col
                    self._advance(len(punct))
                    yield Token(TokenKind.PUNCT, punct, line, col)
                    matched = True
                    break
            if matched:
                continue
            raise LexError(f"unexpected character {ch!r}", self.line, self.col)
        yield Token(TokenKind.EOF, "", self.line, self.col)


def tokenize(source: str, *, keep_comments: bool = False) -> List[Token]:
    """Tokenize ``source`` into a list of tokens.

    Parameters
    ----------
    source:
        C source text.
    keep_comments:
        When ``False`` (the default) comment tokens are dropped, which is what
        the parser wants.  The DRB-ML trimming pipeline passes ``True`` so it
        can locate comments precisely.
    """
    toks = list(Lexer(source).tokens())
    if keep_comments:
        return toks
    return [t for t in toks if t.kind is not TokenKind.COMMENT]
