"""Recursive-descent parser for the C-with-OpenMP subset.

The parser consumes the token stream produced by :mod:`repro.cparse.lexer`
and builds the AST defined in :mod:`repro.cparse.ast`.  It covers the full
grammar emitted by the corpus generator:

* ``#include`` directives, global declarations, function definitions;
* declarations with multiple declarators, pointers, multi-dimensional arrays
  and initializers;
* statements: compound blocks, ``for``/``while``/``if``/``return``/``break``/
  ``continue``, expression statements and OpenMP pragma statements;
* the usual C expression grammar with correct precedence (assignment,
  ternary, logical, relational, additive, multiplicative, unary, postfix).

Typedef-style type names used by OpenMP programs (``omp_lock_t``,
``size_t``, ``uint64_t`` ...) are recognised as types when they appear in a
declaration position.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.cparse import ast
from repro.cparse.lexer import Token, TokenKind, tokenize
from repro.cparse.pragma import is_standalone_directive, parse_pragma

__all__ = ["ParseError", "Parser", "parse"]

#: Known typedef-like type names that may start a declaration.
TYPEDEF_NAMES = frozenset(
    {
        "omp_lock_t",
        "omp_nest_lock_t",
        "size_t",
        "int8_t",
        "int16_t",
        "int32_t",
        "int64_t",
        "uint8_t",
        "uint16_t",
        "uint32_t",
        "uint64_t",
        "bool",
    }
)

#: Binary operator precedence levels, lowest first.
_BINARY_LEVELS: Tuple[Tuple[str, ...], ...] = (
    ("||",),
    ("&&",),
    ("|",),
    ("^",),
    ("&",),
    ("==", "!="),
    ("<", ">", "<=", ">="),
    ("<<", ">>"),
    ("+", "-"),
    ("*", "/", "%"),
)

_ASSIGN_OPS = ("=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>=")


class ParseError(ValueError):
    """Raised when the parser encounters unexpected input."""

    def __init__(self, message: str, token: Token) -> None:
        super().__init__(f"{message} (got {token.kind.value} {token.text!r} at {token.line}:{token.col})")
        self.token = token


class Parser:
    """Token-stream parser producing a :class:`~repro.cparse.ast.TranslationUnit`."""

    def __init__(self, tokens: List[Token]) -> None:
        self.tokens = tokens
        self.pos = 0

    # -- cursor helpers -----------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        idx = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[idx]

    def _advance(self) -> Token:
        tok = self.tokens[self.pos]
        if self.pos < len(self.tokens) - 1:
            self.pos += 1
        return tok

    def _check_punct(self, text: str) -> bool:
        return self._peek().is_punct(text)

    def _accept_punct(self, text: str) -> bool:
        if self._check_punct(text):
            self._advance()
            return True
        return False

    def _expect_punct(self, text: str) -> Token:
        if not self._check_punct(text):
            raise ParseError(f"expected {text!r}", self._peek())
        return self._advance()

    def _expect_ident(self) -> Token:
        tok = self._peek()
        if tok.kind is not TokenKind.IDENT:
            raise ParseError("expected identifier", tok)
        return self._advance()

    def _loc(self, tok: Token) -> ast.SourceLoc:
        return ast.SourceLoc(tok.line, tok.col)

    # -- type detection -----------------------------------------------------------

    def _at_type(self) -> bool:
        """Return True when the current token starts a declaration."""
        tok = self._peek()
        if tok.kind is TokenKind.KEYWORD and tok.text in (
            "int",
            "long",
            "float",
            "double",
            "char",
            "void",
            "unsigned",
            "signed",
            "short",
            "const",
            "static",
            "struct",
        ):
            return True
        if tok.kind is TokenKind.IDENT and tok.text in TYPEDEF_NAMES:
            return True
        return False

    def _parse_type_name(self) -> Tuple[str, Tuple[str, ...]]:
        """Consume type specifier tokens and return (type_name, qualifiers)."""
        qualifiers: List[str] = []
        parts: List[str] = []
        while True:
            tok = self._peek()
            if tok.kind is TokenKind.KEYWORD and tok.text in ("const", "static"):
                qualifiers.append(self._advance().text)
                continue
            if tok.kind is TokenKind.KEYWORD and tok.text in (
                "unsigned",
                "signed",
                "short",
                "long",
                "int",
                "float",
                "double",
                "char",
                "void",
            ):
                parts.append(self._advance().text)
                # "long long", "unsigned int" etc. keep looping
                continue
            if tok.kind is TokenKind.KEYWORD and tok.text == "struct":
                self._advance()
                name = self._expect_ident().text
                parts.append(f"struct {name}")
                break
            if not parts and tok.kind is TokenKind.IDENT and tok.text in TYPEDEF_NAMES:
                parts.append(self._advance().text)
                break
            break
        if not parts:
            raise ParseError("expected type name", self._peek())
        return " ".join(parts), tuple(qualifiers)

    # -- top level ----------------------------------------------------------------

    def parse_translation_unit(self) -> ast.TranslationUnit:
        first = self._peek()
        unit = ast.TranslationUnit(loc=self._loc(first))
        while self._peek().kind is not TokenKind.EOF:
            tok = self._peek()
            if tok.kind is TokenKind.INCLUDE:
                self._advance()
                header = tok.text[len("include") :].strip()
                unit.includes.append(
                    ast.IncludeDirective(loc=self._loc(tok), header=header)
                )
                continue
            if tok.kind is TokenKind.PRAGMA:
                # File-scope pragmas (e.g. ``omp threadprivate(x)``) become
                # global OmpStmt-free declarations; we skip them here but the
                # analyses can still see them via the raw source if needed.
                self._advance()
                continue
            if self._at_type():
                item = self._parse_declaration_or_function()
                if isinstance(item, ast.FunctionDef):
                    unit.functions.append(item)
                else:
                    unit.globals.append(item)
                continue
            raise ParseError("unexpected token at file scope", tok)
        return unit

    def _parse_declaration_or_function(self):
        start = self._peek()
        type_name, qualifiers = self._parse_type_name()
        pointer_depth = 0
        while self._accept_punct("*"):
            pointer_depth += 1
        name_tok = self._expect_ident()
        if self._check_punct("("):
            return self._parse_function_rest(start, type_name, name_tok)
        return self._parse_declaration_rest(
            start, type_name, qualifiers, pointer_depth, name_tok
        )

    def _parse_function_rest(
        self, start: Token, return_type: str, name_tok: Token
    ) -> ast.FunctionDef:
        self._expect_punct("(")
        params: List[ast.Parameter] = []
        if not self._check_punct(")"):
            while True:
                ptok = self._peek()
                if ptok.is_keyword("void") and self._peek(1).is_punct(")"):
                    self._advance()
                    break
                ptype, _ = self._parse_type_name()
                pdepth = 0
                while self._accept_punct("*"):
                    pdepth += 1
                pname = self._expect_ident().text
                is_array = False
                while self._accept_punct("["):
                    is_array = True
                    if not self._check_punct("]"):
                        self._parse_expression()
                    self._expect_punct("]")
                params.append(
                    ast.Parameter(
                        loc=self._loc(ptok),
                        type_name=ptype,
                        name=pname,
                        pointer_depth=pdepth,
                        is_array=is_array,
                    )
                )
                if not self._accept_punct(","):
                    break
        self._expect_punct(")")
        body = self._parse_compound()
        return ast.FunctionDef(
            loc=self._loc(start),
            return_type=return_type,
            name=name_tok.text,
            params=params,
            body=body,
        )

    def _parse_declarator(
        self, pointer_depth: int, name_tok: Token
    ) -> ast.Declarator:
        dims: List[Optional[ast.Expr]] = []
        while self._accept_punct("["):
            if self._check_punct("]"):
                dims.append(None)
            else:
                dims.append(self._parse_expression())
            self._expect_punct("]")
        init: Optional[ast.Expr] = None
        if self._accept_punct("="):
            init = self._parse_initializer()
        return ast.Declarator(
            loc=self._loc(name_tok),
            name=name_tok.text,
            pointer_depth=pointer_depth,
            array_dims=dims,
            init=init,
        )

    def _parse_initializer(self) -> ast.Expr:
        if self._check_punct("{"):
            # Brace initializer: represent as a Call node named "__init_list__"
            start = self._expect_punct("{")
            elements: List[ast.Expr] = []
            if not self._check_punct("}"):
                while True:
                    elements.append(self._parse_assignment_expr())
                    if not self._accept_punct(","):
                        break
            self._expect_punct("}")
            return ast.Call(loc=self._loc(start), name="__init_list__", args=elements)
        return self._parse_assignment_expr()

    def _parse_declaration_rest(
        self,
        start: Token,
        type_name: str,
        qualifiers: Tuple[str, ...],
        pointer_depth: int,
        name_tok: Token,
    ) -> ast.Declaration:
        declarators = [self._parse_declarator(pointer_depth, name_tok)]
        while self._accept_punct(","):
            depth = 0
            while self._accept_punct("*"):
                depth += 1
            next_name = self._expect_ident()
            declarators.append(self._parse_declarator(depth, next_name))
        self._expect_punct(";")
        return ast.Declaration(
            loc=self._loc(start),
            type_name=type_name,
            declarators=declarators,
            qualifiers=qualifiers,
        )

    # -- statements ---------------------------------------------------------------

    def _parse_compound(self) -> ast.CompoundStmt:
        start = self._expect_punct("{")
        stmts: List[ast.Stmt] = []
        while not self._check_punct("}"):
            if self._peek().kind is TokenKind.EOF:
                raise ParseError("unterminated compound statement", self._peek())
            stmts.append(self._parse_statement())
        self._expect_punct("}")
        return ast.CompoundStmt(loc=self._loc(start), body=stmts)

    def _parse_statement(self) -> ast.Stmt:
        tok = self._peek()
        if tok.kind is TokenKind.PRAGMA:
            return self._parse_omp_statement()
        if tok.is_punct("{"):
            return self._parse_compound()
        if tok.is_punct(";"):
            self._advance()
            return ast.NullStmt(loc=self._loc(tok))
        if tok.is_keyword("for"):
            return self._parse_for()
        if tok.is_keyword("while"):
            return self._parse_while()
        if tok.is_keyword("if"):
            return self._parse_if()
        if tok.is_keyword("return"):
            self._advance()
            value = None
            if not self._check_punct(";"):
                value = self._parse_expression()
            self._expect_punct(";")
            return ast.ReturnStmt(loc=self._loc(tok), value=value)
        if tok.is_keyword("break"):
            self._advance()
            self._expect_punct(";")
            return ast.BreakStmt(loc=self._loc(tok))
        if tok.is_keyword("continue"):
            self._advance()
            self._expect_punct(";")
            return ast.ContinueStmt(loc=self._loc(tok))
        if self._at_type():
            type_name, qualifiers = self._parse_type_name()
            depth = 0
            while self._accept_punct("*"):
                depth += 1
            name_tok = self._expect_ident()
            return self._parse_declaration_rest(tok, type_name, qualifiers, depth, name_tok)
        expr = self._parse_expression()
        self._expect_punct(";")
        return ast.ExprStmt(loc=self._loc(tok), expr=expr)

    def _parse_omp_statement(self) -> ast.OmpStmt:
        tok = self._advance()
        pragma = parse_pragma(tok.text, tok.line, tok.col)
        if is_standalone_directive(pragma):
            return ast.OmpStmt(loc=self._loc(tok), pragma=pragma, body=None)
        body = self._parse_statement()
        return ast.OmpStmt(loc=self._loc(tok), pragma=pragma, body=body)

    def _parse_for(self) -> ast.ForStmt:
        tok = self._advance()
        self._expect_punct("(")
        init: Optional[ast.Stmt] = None
        if not self._check_punct(";"):
            if self._at_type():
                type_name, qualifiers = self._parse_type_name()
                depth = 0
                while self._accept_punct("*"):
                    depth += 1
                name_tok = self._expect_ident()
                declarators = [self._parse_declarator(depth, name_tok)]
                while self._accept_punct(","):
                    d2 = 0
                    while self._accept_punct("*"):
                        d2 += 1
                    declarators.append(self._parse_declarator(d2, self._expect_ident()))
                init = ast.Declaration(
                    loc=self._loc(tok),
                    type_name=type_name,
                    declarators=declarators,
                    qualifiers=qualifiers,
                )
                self._expect_punct(";")
            else:
                expr = self._parse_expression()
                init = ast.ExprStmt(loc=self._loc(tok), expr=expr)
                self._expect_punct(";")
        else:
            self._expect_punct(";")
        cond: Optional[ast.Expr] = None
        if not self._check_punct(";"):
            cond = self._parse_expression()
        self._expect_punct(";")
        step: Optional[ast.Expr] = None
        if not self._check_punct(")"):
            step = self._parse_expression()
        self._expect_punct(")")
        body = self._parse_statement()
        return ast.ForStmt(loc=self._loc(tok), init=init, cond=cond, step=step, body=body)

    def _parse_while(self) -> ast.WhileStmt:
        tok = self._advance()
        self._expect_punct("(")
        cond = self._parse_expression()
        self._expect_punct(")")
        body = self._parse_statement()
        return ast.WhileStmt(loc=self._loc(tok), cond=cond, body=body)

    def _parse_if(self) -> ast.IfStmt:
        tok = self._advance()
        self._expect_punct("(")
        cond = self._parse_expression()
        self._expect_punct(")")
        then = self._parse_statement()
        other: Optional[ast.Stmt] = None
        if self._peek().is_keyword("else"):
            self._advance()
            other = self._parse_statement()
        return ast.IfStmt(loc=self._loc(tok), cond=cond, then=then, other=other)

    # -- expressions --------------------------------------------------------------

    def _parse_expression(self) -> ast.Expr:
        expr = self._parse_assignment_expr()
        # The comma operator appears only in for-steps like ``i++, j++``.
        while self._check_punct(",") and self._comma_is_operator():
            op_tok = self._advance()
            right = self._parse_assignment_expr()
            expr = ast.BinaryOp(loc=self._loc(op_tok), op=",", left=expr, right=right)
        return expr

    def _comma_is_operator(self) -> bool:
        """Inside argument lists the caller handles commas; only for-steps use
        the comma operator.  We use a conservative heuristic: treat the comma
        as an operator only when the next token can begin an expression and we
        are not inside a call (the call parser never calls _parse_expression)."""
        nxt = self._peek(1)
        return nxt.kind in (
            TokenKind.IDENT,
            TokenKind.INT_LIT,
            TokenKind.FLOAT_LIT,
        ) or nxt.is_punct("(")

    def _parse_assignment_expr(self) -> ast.Expr:
        left = self._parse_conditional()
        tok = self._peek()
        if tok.kind is TokenKind.PUNCT and tok.text in _ASSIGN_OPS:
            self._advance()
            value = self._parse_assignment_expr()
            return ast.Assignment(loc=self._loc(tok), op=tok.text, target=left, value=value)
        return left

    def _parse_conditional(self) -> ast.Expr:
        cond = self._parse_binary(0)
        if self._check_punct("?"):
            tok = self._advance()
            then = self._parse_assignment_expr()
            self._expect_punct(":")
            other = self._parse_conditional()
            return ast.ConditionalExpr(loc=self._loc(tok), cond=cond, then=then, other=other)
        return cond

    def _parse_binary(self, level: int) -> ast.Expr:
        if level >= len(_BINARY_LEVELS):
            return self._parse_unary()
        left = self._parse_binary(level + 1)
        ops = _BINARY_LEVELS[level]
        while self._peek().kind is TokenKind.PUNCT and self._peek().text in ops:
            tok = self._advance()
            right = self._parse_binary(level + 1)
            left = ast.BinaryOp(loc=self._loc(tok), op=tok.text, left=left, right=right)
        return left

    def _parse_unary(self) -> ast.Expr:
        tok = self._peek()
        if tok.kind is TokenKind.PUNCT and tok.text in ("+", "-", "!", "~"):
            self._advance()
            operand = self._parse_unary()
            return ast.UnaryOp(loc=self._loc(tok), op=tok.text, operand=operand)
        if tok.is_punct("&"):
            self._advance()
            operand = self._parse_unary()
            return ast.AddressOf(loc=self._loc(tok), operand=operand)
        if tok.is_punct("*"):
            self._advance()
            operand = self._parse_unary()
            return ast.Deref(loc=self._loc(tok), operand=operand)
        if tok.kind is TokenKind.PUNCT and tok.text in ("++", "--"):
            self._advance()
            operand = self._parse_unary()
            return ast.IncDec(loc=self._loc(tok), op=tok.text, operand=operand, prefix=True)
        if tok.is_keyword("sizeof"):
            self._advance()
            self._expect_punct("(")
            # sizeof(type) or sizeof(expr): either way we record a call node.
            if self._at_type():
                type_name, _ = self._parse_type_name()
                while self._accept_punct("*"):
                    type_name += "*"
                arg: ast.Expr = ast.StringLiteral(loc=self._loc(tok), value=type_name)
            else:
                arg = self._parse_expression()
            self._expect_punct(")")
            return ast.Call(loc=self._loc(tok), name="sizeof", args=[arg])
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        while True:
            tok = self._peek()
            if tok.is_punct("["):
                self._advance()
                index = self._parse_expression()
                self._expect_punct("]")
                expr = ast.ArraySubscript(loc=expr.loc, base=expr, index=index)
                continue
            if tok.is_punct("(") and isinstance(expr, ast.Identifier):
                self._advance()
                args: List[ast.Expr] = []
                if not self._check_punct(")"):
                    while True:
                        args.append(self._parse_assignment_expr())
                        if not self._accept_punct(","):
                            break
                self._expect_punct(")")
                expr = ast.Call(loc=expr.loc, name=expr.name, args=args)
                continue
            if tok.kind is TokenKind.PUNCT and tok.text in ("++", "--"):
                self._advance()
                expr = ast.IncDec(loc=expr.loc, op=tok.text, operand=expr, prefix=False)
                continue
            if tok.is_punct(".") or tok.is_punct("->"):
                # Member access: model as identifier with a composite name so
                # the analyses can still track it as a named location.
                self._advance()
                member = self._expect_ident()
                base_name = expr.name if isinstance(expr, ast.Identifier) else "<expr>"
                sep = "." if tok.text == "." else "->"
                expr = ast.Identifier(loc=expr.loc, name=f"{base_name}{sep}{member.text}")
                continue
            break
        return expr

    def _parse_primary(self) -> ast.Expr:
        tok = self._peek()
        if tok.kind is TokenKind.INT_LIT:
            self._advance()
            text = tok.text.rstrip("uUlL")
            return ast.IntLiteral(loc=self._loc(tok), value=int(text, 0), text=tok.text)
        if tok.kind is TokenKind.FLOAT_LIT:
            self._advance()
            return ast.FloatLiteral(
                loc=self._loc(tok), value=float(tok.text.rstrip("fFlL")), text=tok.text
            )
        if tok.kind is TokenKind.STRING_LIT or tok.kind is TokenKind.CHAR_LIT:
            self._advance()
            return ast.StringLiteral(loc=self._loc(tok), value=tok.text)
        if tok.kind is TokenKind.IDENT:
            self._advance()
            return ast.Identifier(loc=self._loc(tok), name=tok.text)
        if tok.is_punct("("):
            self._advance()
            # Cast expression like (double)x — detect a type inside parens.
            if self._at_type():
                save = self.pos
                try:
                    self._parse_type_name()
                    while self._accept_punct("*"):
                        pass
                    if self._accept_punct(")"):
                        operand = self._parse_unary()
                        return operand  # casts are transparent to the analyses
                except ParseError:
                    pass
                self.pos = save
            expr = self._parse_expression()
            self._expect_punct(")")
            return expr
        raise ParseError("expected expression", tok)


def parse(source: str) -> ast.TranslationUnit:
    """Parse C source text into a :class:`~repro.cparse.ast.TranslationUnit`."""
    tokens = tokenize(source, keep_comments=False)
    return Parser(tokens).parse_translation_unit()
