"""AST node definitions for the C-with-OpenMP subset.

Every node carries a :class:`SourceLoc` (1-based line/column of the token that
starts the construct).  Expression nodes additionally expose the location of
the *variable reference itself* where relevant (identifiers, subscripts), which
is what the variable-pair ground truth and the access extractor report.

The node set intentionally mirrors what the corpus generator emits:

* translation unit: include directives, function definitions, global
  declarations;
* statements: declarations, expression statements, ``for``, ``while``, ``if``,
  compound blocks, ``return``, ``break``/``continue``, OpenMP pragma-annotated
  statements;
* expressions: integer/float/string literals, identifiers, array subscripts
  (arbitrary nesting depth), unary and binary operators, assignments
  (including compound assignment and increment/decrement), function calls,
  address-of and dereference.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "SourceLoc",
    "Node",
    "Expr",
    "IntLiteral",
    "FloatLiteral",
    "StringLiteral",
    "Identifier",
    "ArraySubscript",
    "UnaryOp",
    "BinaryOp",
    "Assignment",
    "IncDec",
    "Call",
    "AddressOf",
    "Deref",
    "ConditionalExpr",
    "Stmt",
    "Declaration",
    "Declarator",
    "ExprStmt",
    "CompoundStmt",
    "ForStmt",
    "WhileStmt",
    "IfStmt",
    "ReturnStmt",
    "BreakStmt",
    "ContinueStmt",
    "NullStmt",
    "OmpClause",
    "OmpPragma",
    "OmpStmt",
    "IncludeDirective",
    "FunctionDef",
    "Parameter",
    "TranslationUnit",
    "walk",
]


@dataclass(frozen=True)
class SourceLoc:
    """A 1-based (line, column) source position."""

    line: int
    col: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.line}:{self.col}"


@dataclass
class Node:
    """Base class for all AST nodes."""

    loc: SourceLoc

    def children(self) -> Iterator["Node"]:
        """Yield direct child nodes; default implementation yields nothing."""
        return iter(())


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass
class Expr(Node):
    """Base class for expression nodes."""


@dataclass
class IntLiteral(Expr):
    value: int
    text: str = ""


@dataclass
class FloatLiteral(Expr):
    value: float
    text: str = ""


@dataclass
class StringLiteral(Expr):
    value: str


@dataclass
class Identifier(Expr):
    """A bare variable reference such as ``x`` or ``len``."""

    name: str


@dataclass
class ArraySubscript(Expr):
    """An array access ``base[index]``.

    Multi-dimensional accesses like ``b[i][j]`` nest: the outer subscript's
    ``base`` is another :class:`ArraySubscript`.
    """

    base: Expr
    index: Expr

    def children(self) -> Iterator[Node]:
        yield self.base
        yield self.index

    def root_name(self) -> Optional[str]:
        """Return the name of the underlying array variable, if identifiable."""
        node: Expr = self
        while isinstance(node, ArraySubscript):
            node = node.base
        if isinstance(node, Identifier):
            return node.name
        return None

    def indices(self) -> List[Expr]:
        """Return subscript expressions from outermost dimension to innermost."""
        out: List[Expr] = []
        node: Expr = self
        while isinstance(node, ArraySubscript):
            out.append(node.index)
            node = node.base
        out.reverse()
        return out


@dataclass
class UnaryOp(Expr):
    op: str
    operand: Expr

    def children(self) -> Iterator[Node]:
        yield self.operand


@dataclass
class BinaryOp(Expr):
    op: str
    left: Expr
    right: Expr

    def children(self) -> Iterator[Node]:
        yield self.left
        yield self.right


@dataclass
class Assignment(Expr):
    """``target = value`` and compound forms (``+=``, ``-=``, ...)."""

    op: str
    target: Expr
    value: Expr

    def children(self) -> Iterator[Node]:
        yield self.target
        yield self.value

    @property
    def is_compound(self) -> bool:
        """True for ``+=`` style assignments, which read *and* write the target."""
        return self.op != "="


@dataclass
class IncDec(Expr):
    """``x++``, ``++x``, ``x--``, ``--x`` — a read-modify-write of the operand."""

    op: str
    operand: Expr
    prefix: bool

    def children(self) -> Iterator[Node]:
        yield self.operand


@dataclass
class Call(Expr):
    """A function call such as ``printf(...)`` or ``omp_set_lock(&lck)``."""

    name: str
    args: List[Expr] = field(default_factory=list)

    def children(self) -> Iterator[Node]:
        yield from self.args


@dataclass
class AddressOf(Expr):
    operand: Expr

    def children(self) -> Iterator[Node]:
        yield self.operand


@dataclass
class Deref(Expr):
    operand: Expr

    def children(self) -> Iterator[Node]:
        yield self.operand


@dataclass
class ConditionalExpr(Expr):
    """The ternary ``cond ? then : other`` expression."""

    cond: Expr
    then: Expr
    other: Expr

    def children(self) -> Iterator[Node]:
        yield self.cond
        yield self.then
        yield self.other


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass
class Stmt(Node):
    """Base class for statement nodes."""


@dataclass
class Declarator(Node):
    """One declarator in a declaration: name, array dims, pointer depth, init."""

    name: str
    pointer_depth: int = 0
    array_dims: List[Optional[Expr]] = field(default_factory=list)
    init: Optional[Expr] = None

    def children(self) -> Iterator[Node]:
        for dim in self.array_dims:
            if dim is not None:
                yield dim
        if self.init is not None:
            yield self.init

    @property
    def is_array(self) -> bool:
        return bool(self.array_dims)

    @property
    def is_pointer(self) -> bool:
        return self.pointer_depth > 0


@dataclass
class Declaration(Stmt):
    """A declaration statement, e.g. ``int a[1000], i = 0;``."""

    type_name: str
    declarators: List[Declarator] = field(default_factory=list)
    qualifiers: Tuple[str, ...] = ()

    def children(self) -> Iterator[Node]:
        yield from self.declarators


@dataclass
class ExprStmt(Stmt):
    expr: Expr

    def children(self) -> Iterator[Node]:
        yield self.expr


@dataclass
class CompoundStmt(Stmt):
    body: List[Stmt] = field(default_factory=list)

    def children(self) -> Iterator[Node]:
        yield from self.body


@dataclass
class ForStmt(Stmt):
    """``for (init; cond; step) body``.

    ``init`` may be a declaration (``for (int i = 0; ...)``) or an expression
    statement; either may be ``None`` for degenerate loops.
    """

    init: Optional[Stmt]
    cond: Optional[Expr]
    step: Optional[Expr]
    body: Stmt

    def children(self) -> Iterator[Node]:
        if self.init is not None:
            yield self.init
        if self.cond is not None:
            yield self.cond
        if self.step is not None:
            yield self.step
        yield self.body

    def loop_variable(self) -> Optional[str]:
        """Best-effort extraction of the canonical loop induction variable name."""
        init = self.init
        if isinstance(init, Declaration) and init.declarators:
            return init.declarators[0].name
        if isinstance(init, ExprStmt) and isinstance(init.expr, Assignment):
            target = init.expr.target
            if isinstance(target, Identifier):
                return target.name
        return None


@dataclass
class WhileStmt(Stmt):
    cond: Expr
    body: Stmt

    def children(self) -> Iterator[Node]:
        yield self.cond
        yield self.body


@dataclass
class IfStmt(Stmt):
    cond: Expr
    then: Stmt
    other: Optional[Stmt] = None

    def children(self) -> Iterator[Node]:
        yield self.cond
        yield self.then
        if self.other is not None:
            yield self.other


@dataclass
class ReturnStmt(Stmt):
    value: Optional[Expr] = None

    def children(self) -> Iterator[Node]:
        if self.value is not None:
            yield self.value


@dataclass
class BreakStmt(Stmt):
    pass


@dataclass
class ContinueStmt(Stmt):
    pass


@dataclass
class NullStmt(Stmt):
    """An empty statement (a bare ``;``)."""


# ---------------------------------------------------------------------------
# OpenMP
# ---------------------------------------------------------------------------


@dataclass
class OmpClause(Node):
    """A single OpenMP clause.

    ``name`` is the clause keyword (``private``, ``reduction``, ``schedule``,
    ``num_threads``, ``nowait``, ...).  ``arguments`` holds the raw argument
    strings (variable names, or schedule kinds); ``reduction_op`` is populated
    for ``reduction(op:vars)`` clauses.
    """

    name: str
    arguments: List[str] = field(default_factory=list)
    reduction_op: Optional[str] = None

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        if self.name == "reduction" and self.reduction_op:
            return f"reduction({self.reduction_op}:{', '.join(self.arguments)})"
        if self.arguments:
            return f"{self.name}({', '.join(self.arguments)})"
        return self.name


@dataclass
class OmpPragma(Node):
    """A parsed ``#pragma omp`` directive.

    ``directives`` is the tuple of directive keywords in order, e.g.
    ``("parallel", "for")`` or ``("critical",)``; ``clauses`` the parsed
    clause list.
    """

    directives: Tuple[str, ...]
    clauses: List[OmpClause] = field(default_factory=list)

    def has_directive(self, name: str) -> bool:
        return name in self.directives

    def clause(self, name: str) -> Optional[OmpClause]:
        """Return the first clause called ``name``, or ``None``."""
        for clause in self.clauses:
            if clause.name == name:
                return clause
        return None

    def clause_vars(self, name: str) -> List[str]:
        """Return all variables listed across every clause called ``name``."""
        out: List[str] = []
        for clause in self.clauses:
            if clause.name == name:
                out.extend(clause.arguments)
        return out

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        parts = ["omp", *self.directives]
        parts.extend(str(c) for c in self.clauses)
        return " ".join(parts)


@dataclass
class OmpStmt(Stmt):
    """A statement governed by an OpenMP pragma.

    Stand-alone directives (``barrier``, ``taskwait``, ``flush``) have
    ``body is None``.
    """

    pragma: OmpPragma
    body: Optional[Stmt] = None

    def children(self) -> Iterator[Node]:
        yield self.pragma
        if self.body is not None:
            yield self.body


# ---------------------------------------------------------------------------
# Top level
# ---------------------------------------------------------------------------


@dataclass
class IncludeDirective(Node):
    header: str


@dataclass
class Parameter(Node):
    type_name: str
    name: str
    pointer_depth: int = 0
    is_array: bool = False


@dataclass
class FunctionDef(Node):
    return_type: str
    name: str
    params: List[Parameter] = field(default_factory=list)
    body: CompoundStmt = None  # type: ignore[assignment]

    def children(self) -> Iterator[Node]:
        yield from self.params
        if self.body is not None:
            yield self.body


@dataclass
class TranslationUnit(Node):
    """The root node: includes, global declarations and function definitions."""

    includes: List[IncludeDirective] = field(default_factory=list)
    globals: List[Declaration] = field(default_factory=list)
    functions: List[FunctionDef] = field(default_factory=list)

    def children(self) -> Iterator[Node]:
        yield from self.includes
        yield from self.globals
        yield from self.functions

    def function(self, name: str) -> Optional[FunctionDef]:
        """Look up a function definition by name."""
        for fn in self.functions:
            if fn.name == name:
                return fn
        return None

    @property
    def main(self) -> Optional[FunctionDef]:
        return self.function("main")


def walk(node: Node) -> Iterator[Node]:
    """Yield ``node`` and all descendants in depth-first pre-order."""
    yield node
    for child in node.children():
        yield from walk(child)
