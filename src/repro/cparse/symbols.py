"""Symbol table construction for parsed translation units.

The symbol table records, for every declared variable, its type, array
dimensionality, pointer depth, declaration location and the lexical scope it
was declared in.  The OpenMP data-sharing classifier
(:mod:`repro.analysis.sharing`) and the dynamic interpreter both rely on this
information to decide which storage a name refers to and whether a variable
is scalar or an aggregate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro.cparse import ast

__all__ = ["Symbol", "Scope", "SymbolTable", "build_symbol_table"]


@dataclass
class Symbol:
    """A declared variable.

    Attributes
    ----------
    name:
        Variable name.
    type_name:
        Base type (``int``, ``double``, ``omp_lock_t`` ...).
    pointer_depth:
        Number of ``*`` in the declarator.
    array_dims:
        Static array dimensions when they could be evaluated, otherwise
        ``None`` entries for unsized dimensions.
    loc:
        Declaration location.
    scope_depth:
        0 for globals, 1 for function-level locals, deeper for nested blocks
        and loop bodies.
    is_parameter:
        True for function parameters.
    """

    name: str
    type_name: str
    pointer_depth: int = 0
    array_dims: List[Optional[int]] = field(default_factory=list)
    loc: ast.SourceLoc = field(default_factory=lambda: ast.SourceLoc(0, 0))
    scope_depth: int = 0
    is_parameter: bool = False

    @property
    def is_array(self) -> bool:
        return bool(self.array_dims)

    @property
    def is_pointer(self) -> bool:
        return self.pointer_depth > 0

    @property
    def is_scalar(self) -> bool:
        return not self.is_array and not self.is_pointer

    @property
    def is_lock(self) -> bool:
        return self.type_name in ("omp_lock_t", "omp_nest_lock_t")

    def element_count(self) -> int:
        """Total number of elements for a statically sized array (1 for scalars)."""
        count = 1
        for dim in self.array_dims:
            count *= dim if dim else 1
        return count


@dataclass
class Scope:
    """A lexical scope holding a name → symbol mapping."""

    depth: int
    symbols: Dict[str, Symbol] = field(default_factory=dict)
    parent: Optional["Scope"] = None

    def declare(self, symbol: Symbol) -> None:
        self.symbols[symbol.name] = symbol

    def lookup(self, name: str) -> Optional[Symbol]:
        scope: Optional[Scope] = self
        while scope is not None:
            if name in scope.symbols:
                return scope.symbols[name]
            scope = scope.parent
        return None


class SymbolTable:
    """All symbols declared in a translation unit, grouped per function."""

    def __init__(self) -> None:
        self.globals: Dict[str, Symbol] = {}
        self.by_function: Dict[str, Dict[str, Symbol]] = {}

    def lookup(self, name: str, function: Optional[str] = None) -> Optional[Symbol]:
        """Find ``name``, preferring the given function's locals over globals."""
        if function and name in self.by_function.get(function, {}):
            return self.by_function[function][name]
        # fall back: any function that declares it, then globals
        if function is None:
            for scope in self.by_function.values():
                if name in scope:
                    return scope[name]
        return self.globals.get(name)

    def all_symbols(self) -> Iterator[Symbol]:
        yield from self.globals.values()
        for scope in self.by_function.values():
            yield from scope.values()

    def arrays(self, function: Optional[str] = None) -> List[Symbol]:
        """Return all array symbols visible in ``function`` (or everywhere)."""
        out = [s for s in self.globals.values() if s.is_array]
        scopes = (
            [self.by_function.get(function, {})]
            if function is not None
            else list(self.by_function.values())
        )
        for scope in scopes:
            out.extend(s for s in scope.values() if s.is_array)
        return out


def _eval_static_dim(expr: Optional[ast.Expr]) -> Optional[int]:
    """Evaluate a constant array dimension expression, or return ``None``."""
    if expr is None:
        return None
    if isinstance(expr, ast.IntLiteral):
        return expr.value
    if isinstance(expr, ast.BinaryOp):
        left = _eval_static_dim(expr.left)
        right = _eval_static_dim(expr.right)
        if left is None or right is None:
            return None
        try:
            if expr.op == "+":
                return left + right
            if expr.op == "-":
                return left - right
            if expr.op == "*":
                return left * right
            if expr.op == "/":
                return left // right if right else None
        except (ZeroDivisionError, OverflowError):  # pragma: no cover - defensive
            return None
    return None


def _symbol_from_declarator(
    decl: ast.Declaration, declarator: ast.Declarator, depth: int
) -> Symbol:
    dims = [_eval_static_dim(d) for d in declarator.array_dims]
    return Symbol(
        name=declarator.name,
        type_name=decl.type_name,
        pointer_depth=declarator.pointer_depth,
        array_dims=dims,
        loc=declarator.loc,
        scope_depth=depth,
    )


def _collect_stmt(stmt: ast.Stmt, function: str, depth: int, table: SymbolTable) -> None:
    scope = table.by_function.setdefault(function, {})
    if isinstance(stmt, ast.Declaration):
        for declarator in stmt.declarators:
            sym = _symbol_from_declarator(stmt, declarator, depth)
            # Keep the outermost declaration when a name is shadowed; the
            # corpus never relies on shadowing semantics.
            scope.setdefault(declarator.name, sym)
        return
    if isinstance(stmt, ast.CompoundStmt):
        for child in stmt.body:
            _collect_stmt(child, function, depth + 1, table)
        return
    if isinstance(stmt, ast.ForStmt):
        if stmt.init is not None:
            _collect_stmt(stmt.init, function, depth + 1, table)
        _collect_stmt(stmt.body, function, depth + 1, table)
        return
    if isinstance(stmt, ast.WhileStmt):
        _collect_stmt(stmt.body, function, depth + 1, table)
        return
    if isinstance(stmt, ast.IfStmt):
        _collect_stmt(stmt.then, function, depth + 1, table)
        if stmt.other is not None:
            _collect_stmt(stmt.other, function, depth + 1, table)
        return
    if isinstance(stmt, ast.OmpStmt) and stmt.body is not None:
        _collect_stmt(stmt.body, function, depth + 1, table)
        return


def build_symbol_table(unit: ast.TranslationUnit) -> SymbolTable:
    """Build a :class:`SymbolTable` for ``unit``."""
    table = SymbolTable()
    for decl in unit.globals:
        for declarator in decl.declarators:
            table.globals[declarator.name] = _symbol_from_declarator(decl, declarator, 0)
    for fn in unit.functions:
        scope = table.by_function.setdefault(fn.name, {})
        for param in fn.params:
            scope[param.name] = Symbol(
                name=param.name,
                type_name=param.type_name,
                pointer_depth=param.pointer_depth,
                array_dims=[None] if param.is_array else [],
                loc=param.loc,
                scope_depth=1,
                is_parameter=True,
            )
        if fn.body is not None:
            _collect_stmt(fn.body, fn.name, 1, table)
    return table
