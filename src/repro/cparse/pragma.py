"""Parser for ``#pragma omp`` directive text.

The lexer hands pragma directives to the parser as a single token whose text
is everything after ``#pragma`` (for example
``"omp parallel for private(i) reduction(+:sum)"``).  This module turns that
text into an :class:`repro.cparse.ast.OmpPragma` with structured directives
and clauses.

Supported directive keywords (combinations are allowed in the usual OpenMP
way, e.g. ``parallel for simd``):

``parallel``, ``for``, ``sections``, ``section``, ``single``, ``master``,
``critical``, ``atomic``, ``barrier``, ``task``, ``taskwait``, ``taskloop``,
``simd``, ``ordered``, ``target``, ``teams``, ``distribute``, ``flush``,
``threadprivate``.

Supported clauses:

``private``, ``firstprivate``, ``lastprivate``, ``shared``, ``default``,
``reduction``, ``schedule``, ``num_threads``, ``collapse``, ``nowait``,
``ordered``, ``if``, ``map``, ``depend``, ``linear``, ``safelen``,
``device``, ``copyin``, ``copyprivate``, plus atomic modifiers
(``read``/``write``/``update``/``capture``) and critical region names.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from repro.cparse.ast import OmpClause, OmpPragma, SourceLoc

__all__ = ["PragmaError", "parse_pragma", "DIRECTIVE_KEYWORDS", "CLAUSE_KEYWORDS"]


class PragmaError(ValueError):
    """Raised for malformed or unsupported ``#pragma omp`` directives."""


DIRECTIVE_KEYWORDS = (
    # Order matters: combined constructs are parsed greedily left to right.
    "parallel",
    "for",
    "sections",
    "section",
    "single",
    "master",
    "critical",
    "atomic",
    "barrier",
    "taskwait",
    "taskgroup",
    "taskloop",
    "task",
    "simd",
    "ordered",
    "target",
    "teams",
    "distribute",
    "flush",
    "threadprivate",
)

CLAUSE_KEYWORDS = frozenset(
    {
        "private",
        "firstprivate",
        "lastprivate",
        "shared",
        "default",
        "reduction",
        "schedule",
        "num_threads",
        "collapse",
        "nowait",
        "ordered",
        "if",
        "map",
        "depend",
        "linear",
        "safelen",
        "device",
        "copyin",
        "copyprivate",
        # atomic modifiers are represented as argument-less clauses
        "read",
        "write",
        "update",
        "capture",
        "seq_cst",
    }
)

_WORD_RE = re.compile(r"[A-Za-z_][A-Za-z_0-9]*")


def _split_top_level_commas(text: str) -> List[str]:
    """Split a clause argument list on commas that are not nested in brackets."""
    parts: List[str] = []
    depth = 0
    current: List[str] = []
    for ch in text:
        if ch in "([":
            depth += 1
        elif ch in ")]":
            depth -= 1
        if ch == "," and depth == 0:
            parts.append("".join(current).strip())
            current = []
        else:
            current.append(ch)
    tail = "".join(current).strip()
    if tail:
        parts.append(tail)
    return parts


class _PragmaScanner:
    """Cursor over the directive text."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0

    def skip_ws(self) -> None:
        while self.pos < len(self.text) and self.text[self.pos].isspace():
            self.pos += 1

    def at_end(self) -> bool:
        self.skip_ws()
        return self.pos >= len(self.text)

    def peek_word(self) -> Optional[str]:
        self.skip_ws()
        match = _WORD_RE.match(self.text, self.pos)
        return match.group(0) if match else None

    def take_word(self) -> Optional[str]:
        word = self.peek_word()
        if word is not None:
            self.pos += len(word)
        return word

    def take_parenthesized(self) -> Optional[str]:
        """Consume a balanced ``( ... )`` group and return its inner text."""
        self.skip_ws()
        if self.pos >= len(self.text) or self.text[self.pos] != "(":
            return None
        depth = 0
        start = self.pos + 1
        for idx in range(self.pos, len(self.text)):
            ch = self.text[idx]
            if ch == "(":
                depth += 1
            elif ch == ")":
                depth -= 1
                if depth == 0:
                    inner = self.text[start:idx]
                    self.pos = idx + 1
                    return inner
        raise PragmaError(f"unbalanced parentheses in pragma clause: {self.text!r}")


def _parse_clause(name: str, argument: Optional[str], loc: SourceLoc) -> OmpClause:
    """Build an :class:`OmpClause` from a clause keyword and raw argument text."""
    if argument is None:
        return OmpClause(loc=loc, name=name)
    if name == "reduction":
        if ":" not in argument:
            raise PragmaError(f"reduction clause missing operator: {argument!r}")
        op, _, vars_text = argument.partition(":")
        variables = _split_top_level_commas(vars_text)
        if not variables:
            raise PragmaError("reduction clause lists no variables")
        return OmpClause(
            loc=loc, name=name, arguments=variables, reduction_op=op.strip()
        )
    if name in ("map", "depend", "linear") and ":" in argument:
        # keep the modifier as the first argument, the variables after it
        modifier, _, vars_text = argument.partition(":")
        return OmpClause(
            loc=loc,
            name=name,
            arguments=[modifier.strip(), *_split_top_level_commas(vars_text)],
        )
    return OmpClause(loc=loc, name=name, arguments=_split_top_level_commas(argument))


def parse_pragma(text: str, line: int = 1, col: int = 1) -> OmpPragma:
    """Parse the text of an ``#pragma`` directive (without the ``#pragma``).

    Parameters
    ----------
    text:
        Directive text, e.g. ``"omp parallel for private(i)"``.  A leading
        ``omp`` keyword is required; anything else raises :class:`PragmaError`.
    line, col:
        Source location of the directive, propagated into the AST nodes.
    """
    loc = SourceLoc(line, col)
    scanner = _PragmaScanner(text.strip())
    head = scanner.take_word()
    if head != "omp":
        raise PragmaError(f"not an OpenMP pragma: {text!r}")

    directives: List[str] = []
    clauses: List[OmpClause] = []

    # Directive keywords come first; clauses follow.  Some words (``ordered``)
    # can be either — we treat them as directives only while no clause has
    # been seen and the word is not followed by '('.
    while not scanner.at_end():
        word = scanner.peek_word()
        if word is None:
            raise PragmaError(f"unexpected text in pragma: {text!r}")
        next_is_paren = False
        lookahead = _PragmaScanner(scanner.text)
        lookahead.pos = scanner.pos
        lookahead.take_word()
        lookahead.skip_ws()
        if lookahead.pos < len(lookahead.text) and lookahead.text[lookahead.pos] == "(":
            next_is_paren = True

        if not clauses and word in DIRECTIVE_KEYWORDS and not next_is_paren:
            # ``critical`` may take an optional name in parentheses which we
            # fold into a clause below, so the not-next_is_paren guard is
            # fine: a named critical is handled in the clause branch.
            scanner.take_word()
            directives.append(word)
            continue
        if not directives and word == "critical":
            # ``critical`` may carry an optional region name in parentheses.
            scanner.take_word()
            directives.append(word)
            name = scanner.take_parenthesized()
            if name is not None:
                clauses.append(OmpClause(loc=loc, name="name", arguments=[name.strip()]))
            continue

        scanner.take_word()
        argument = scanner.take_parenthesized()
        if word == "critical" and not directives:
            directives.append(word)
            if argument is not None:
                clauses.append(OmpClause(loc=loc, name="name", arguments=[argument]))
            continue
        if word not in CLAUSE_KEYWORDS:
            if word in DIRECTIVE_KEYWORDS:
                directives.append(word)
                if argument is not None:
                    clauses.append(
                        OmpClause(loc=loc, name="name", arguments=[argument])
                    )
                continue
            raise PragmaError(f"unsupported OpenMP clause {word!r} in {text!r}")
        clauses.append(_parse_clause(word, argument, loc))

    if not directives:
        raise PragmaError(f"pragma has no directive: {text!r}")
    return OmpPragma(loc=loc, directives=tuple(directives), clauses=clauses)


def is_standalone_directive(pragma: OmpPragma) -> bool:
    """Return True for directives that do not govern a following statement."""
    standalone = {"barrier", "taskwait", "flush", "threadprivate"}
    return all(d in standalone for d in pragma.directives)
