"""Label scraping from DataRaceBench header comments.

The first step of the DRB-ML construction (paper §3.1) extracts labels from
each DRB code snippet "using scripts that are designed to sift through code
comments and metadata".  This module implements that scraping: it parses the
``Data race pair: a[i+1]@64:10:R vs. a[i]@64:5:W`` lines out of the header
comment and returns structured access pairs.

Scraping from the comment (rather than reading the corpus ground truth
directly) keeps the pipeline faithful to the paper — and the corpus tests
verify that what the scraper recovers equals what the generator seeded.
"""

from __future__ import annotations

import re
from typing import List, Tuple

from repro.corpus.microbenchmark import AccessSpec, RacePair

__all__ = ["scrape_var_pairs", "scrape_race_flag"]

_PAIR_LINE_RE = re.compile(
    r"Data race pair:\s*(?P<first>.+?)\s+vs\.\s+(?P<second>.+?)\s*$"
)
_ACCESS_RE = re.compile(
    r"(?P<name>.+)@(?P<line>\d+):(?P<col>\d+):(?P<op>[RW])$"
)


def _parse_access(text: str) -> AccessSpec:
    match = _ACCESS_RE.match(text.strip())
    if match is None:
        raise ValueError(f"malformed access spec in header comment: {text!r}")
    return AccessSpec(
        name=match.group("name"),
        line=int(match.group("line")),
        col=int(match.group("col")),
        operation=match.group("op"),
    )


def scrape_var_pairs(code: str) -> List[RacePair]:
    """Extract the race pairs recorded in the file's header comment."""
    header = code.split("*/", 1)[0]
    pairs: List[RacePair] = []
    for line in header.splitlines():
        match = _PAIR_LINE_RE.search(line)
        if match is None:
            continue
        first = _parse_access(match.group("first"))
        second = _parse_access(match.group("second"))
        pairs.append(RacePair(first=first, second=second))
    return pairs


def scrape_race_flag(code: str) -> bool:
    """Derive the binary race label from the header comment / file name hints."""
    header = code.split("*/", 1)[0]
    if "Data race pair:" in header:
        return True
    if "No data race present." in header:
        return False
    # Fall back to the DRB file-name convention when the header is silent.
    first_line = code.splitlines()[0] if code.splitlines() else ""
    return "-yes" in first_line
