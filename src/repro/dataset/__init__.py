"""The DRB-ML dataset pipeline (paper §3.1).

Turns the DataRaceBench-style corpus into the machine-learning dataset the
paper builds: one JSON-serialisable record per microbenchmark with the
Table 1 schema (``ID``, ``name``, ``DRB_code``, ``trimmed_code``,
``code_len``, ``data_race``, ``data_race_label``, ``var_pairs``), plus the
prompt–response pairs used for fine-tuning (Listings 8 and 9), the ≤4k-token
evaluation subset, and the stratified 5-fold splits of §3.5.
"""

from repro.dataset.tokenizer import CodeTokenizer, count_tokens
from repro.dataset.trim import TrimResult, trim_comments
from repro.dataset.labels import scrape_var_pairs
from repro.dataset.records import DRBMLRecord, VarPairRecord
from repro.dataset.templates import (
    ADVANCED_FT_PROMPT,
    BASIC_FT_PROMPT,
    render_advanced_ft_response,
    render_basic_ft_response,
)
from repro.dataset.pairs import PromptResponsePair, build_advanced_pairs, build_basic_pairs
from repro.dataset.splits import StratifiedKFold, FoldAssignment
from repro.dataset.drbml import (
    DRBMLDataset,
    iter_default_records,
    iter_records,
    iter_token_subset,
    record_from_benchmark,
)

__all__ = [
    "CodeTokenizer",
    "count_tokens",
    "TrimResult",
    "trim_comments",
    "scrape_var_pairs",
    "DRBMLRecord",
    "VarPairRecord",
    "BASIC_FT_PROMPT",
    "ADVANCED_FT_PROMPT",
    "render_basic_ft_response",
    "render_advanced_ft_response",
    "PromptResponsePair",
    "build_basic_pairs",
    "build_advanced_pairs",
    "StratifiedKFold",
    "FoldAssignment",
    "DRBMLDataset",
    "record_from_benchmark",
    "iter_records",
    "iter_token_subset",
    "iter_default_records",
]
