"""Token counting for the prompt-size filter.

The paper keeps only DRB-ML entries whose code fits the 4k-token input budget
of the evaluated models (198 of 201 entries, §3.2).  Real LLM tokenizers are
byte-pair encoders; for filtering purposes what matters is a stable,
monotonic measure of code size, so :class:`CodeTokenizer` implements a
word-piece style scheme: identifiers and numbers are split into sub-word
chunks of at most ``max_piece_len`` characters, punctuation and operators are
one token each, and whitespace separates tokens.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List

__all__ = ["CodeTokenizer", "count_tokens", "DEFAULT_TOKEN_LIMIT"]

#: The input budget used to build the evaluation subset (paper §3.2).
DEFAULT_TOKEN_LIMIT = 4096

_WORD_RE = re.compile(r"[A-Za-z_][A-Za-z_0-9]*|\d+\.\d+|\d+|\S")


@dataclass(frozen=True)
class CodeTokenizer:
    """Deterministic word-piece tokenizer for C source text."""

    max_piece_len: int = 8

    def tokenize(self, text: str) -> List[str]:
        """Split ``text`` into tokens (identifier pieces, numbers, punctuation)."""
        tokens: List[str] = []
        for match in _WORD_RE.finditer(text):
            word = match.group(0)
            if len(word) <= self.max_piece_len:
                tokens.append(word)
                continue
            for start in range(0, len(word), self.max_piece_len):
                tokens.append(word[start : start + self.max_piece_len])
        return tokens

    def count(self, text: str) -> int:
        """Number of tokens in ``text``."""
        return len(self.tokenize(text))


#: Shared default-configuration instance: the tokenizer is frozen and
#: stateless, so every ``count_tokens`` call can reuse one object instead
#: of constructing a throwaway per call in dataset-build loops.
_DEFAULT_TOKENIZER = CodeTokenizer()


def count_tokens(text: str) -> int:
    """Count tokens with the default tokenizer configuration."""
    return _DEFAULT_TOKENIZER.count(text)
