"""DRB-ML data augmentation (the paper's §4.5 / §5 future-work direction).

The paper identifies dataset scarcity as the main obstacle to fine-tuning and
proposes expanding DRB-ML through scraping and augmentation.  This module
implements the augmentation half: semantics-preserving source-to-source
transforms that multiply the dataset while keeping every label and
variable-pair annotation consistent:

* **identifier renaming** — rename user variables (``a`` → ``arr0`` ...) with
  a deterministic per-record mapping; ``var_pairs`` names are rewritten and
  column numbers re-derived from the transformed source;
* **loop-bound scaling** — change the literal array sizes / trip counts by a
  constant factor, which preserves every dependence pattern;
* **header-comment paraphrasing** — regenerate the descriptive part of the
  header comment (labels are scraped from the ``Data race pair:`` lines,
  which are kept bit-exact).

Augmented records keep a pointer to their origin so evaluation code can keep
augmented variants of a benchmark in the same cross-validation fold as the
original (avoiding train/test leakage).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cparse.lexer import TokenKind, tokenize
from repro.dataset.drbml import record_from_benchmark
from repro.dataset.records import DRBMLRecord, VarPairRecord
from repro.dataset.tokenizer import count_tokens
from repro.dataset.trim import trim_comments

__all__ = ["AugmentationConfig", "AugmentedRecord", "rename_identifiers", "scale_loop_bounds", "augment_record", "augment_dataset"]

#: Names that must never be renamed (API calls, keywords handled by the lexer,
#: standard functions used by the corpus).
_PROTECTED_NAMES = frozenset(
    {
        "main",
        "argc",
        "argv",
        "printf",
        "sizeof",
        "omp_lock_t",
        "omp_nest_lock_t",
        "omp_init_lock",
        "omp_destroy_lock",
        "omp_set_lock",
        "omp_unset_lock",
        "omp_get_thread_num",
        "omp_get_num_threads",
        "omp_get_wtime",
    }
)


@dataclass(frozen=True)
class AugmentationConfig:
    """Controls which transforms :func:`augment_dataset` applies."""

    rename: bool = True
    scale: bool = True
    scale_factor: int = 2
    max_variants_per_record: int = 2
    token_limit: Optional[int] = None


@dataclass
class AugmentedRecord:
    """An augmented DRB-ML record plus its provenance."""

    record: DRBMLRecord
    origin_name: str
    transform: str


def _identifier_positions(source: str) -> List[Tuple[str, int, int]]:
    """(name, line, col) of every identifier token in ``source``."""
    out = []
    for token in tokenize(source, keep_comments=True):
        if token.kind is TokenKind.IDENT:
            out.append((token.text, token.line, token.col))
    return out


def _user_identifiers(source: str) -> List[str]:
    """User-declared names eligible for renaming, in first-appearance order."""
    seen: List[str] = []
    for name, _line, _col in _identifier_positions(source):
        if name in _PROTECTED_NAMES or name in seen:
            continue
        seen.append(name)
    return seen


def _build_rename_map(source: str, salt: int) -> Dict[str, str]:
    """Deterministic renaming map for the user identifiers of ``source``."""
    mapping: Dict[str, str] = {}
    for idx, name in enumerate(_user_identifiers(source)):
        mapping[name] = f"v{salt}_{idx}_{name[:2]}"
    return mapping


_WORD_RE = re.compile(r"[A-Za-z_][A-Za-z_0-9]*")


def _rename_text(text: str, mapping: Dict[str, str]) -> str:
    """Rename identifiers in arbitrary text (code, pragma clauses, pair names)."""
    return _WORD_RE.sub(lambda m: mapping.get(m.group(0), m.group(0)), text)


def rename_identifiers(code: str, *, salt: int = 1) -> Tuple[str, Dict[str, str]]:
    """Rename every user identifier in ``code``.

    Returns the transformed code and the mapping used.  The transform is
    purely textual (applied to identifier word boundaries) so it also rewrites
    pragma clauses and the header comment's ``Data race pair`` names, keeping
    the scraped labels consistent with the code.
    """
    mapping = _build_rename_map(code, salt)
    return _rename_text(code, mapping), mapping


_ARRAY_DIM_RE = re.compile(r"\[(\d{2,5})\]")
_LEN_INIT_RE = re.compile(r"(int\s+(?:len|n)\s*=\s*)(\d{2,5})")


def scale_loop_bounds(code: str, *, factor: int = 2) -> str:
    """Scale literal array sizes and ``len``/``n`` initialisers by ``factor``.

    Only multi-digit literals are touched so small constants that encode the
    pattern itself (offsets like ``a[i+4]``, thread counts, bin counts) are
    preserved; the dependence structure and therefore the labels are
    unchanged.
    """

    def scale_dim(match: re.Match) -> str:
        return f"[{int(match.group(1)) * factor}]"

    def scale_len(match: re.Match) -> str:
        return f"{match.group(1)}{int(match.group(2)) * factor}"

    scaled = _ARRAY_DIM_RE.sub(scale_dim, code)
    return _LEN_INIT_RE.sub(scale_len, scaled)


def _rebuild_record(
    original: DRBMLRecord, new_code: str, suffix: str, pair_names: Optional[List[List[str]]] = None
) -> DRBMLRecord:
    """Re-run the DRB-ML extraction pipeline over transformed source."""
    from repro.dataset.labels import scrape_race_flag, scrape_var_pairs
    from repro.dataset.drbml import _pair_to_record

    trim = trim_comments(new_code)
    scraped = scrape_var_pairs(new_code)
    pairs: List[VarPairRecord] = []
    for pair in scraped:
        converted = _pair_to_record(pair, trim.line_map)
        if converted is not None:
            pairs.append(converted)
    has_race = scrape_race_flag(new_code)
    return DRBMLRecord(
        ID=original.ID,
        name=original.name.replace(".c", f"-{suffix}.c"),
        DRB_code=new_code,
        trimmed_code=trim.trimmed_code,
        code_len=len(trim.trimmed_code),
        data_race=1 if has_race else 0,
        data_race_label=original.data_race_label,
        var_pairs=pairs if has_race else [],
        token_count=count_tokens(trim.trimmed_code),
        category=original.category,
    )


def augment_record(record: DRBMLRecord, config: Optional[AugmentationConfig] = None) -> List[AugmentedRecord]:
    """Produce augmented variants of one record.

    The ``Data race pair:`` lines in the header comment give the original
    line/column coordinates; renaming changes column positions, so the
    transformed header pair locations are re-anchored by searching the renamed
    name on the recorded line.  Records whose annotations cannot be
    re-anchored exactly are skipped rather than emitted with broken labels.
    """
    config = config or AugmentationConfig()
    variants: List[AugmentedRecord] = []

    if config.rename and len(variants) < config.max_variants_per_record:
        renamed_code, mapping = rename_identifiers(record.DRB_code, salt=record.ID % 7 + 1)
        renamed_code = _fix_pair_columns(renamed_code)
        candidate = _rebuild_record(record, renamed_code, "rn")
        if candidate.data_race == record.data_race and (
            not record.has_race or candidate.var_pairs
        ):
            variants.append(AugmentedRecord(candidate, record.name, "rename"))

    if config.scale and len(variants) < config.max_variants_per_record:
        scaled_code = scale_loop_bounds(record.DRB_code, factor=config.scale_factor)
        scaled_code = _fix_pair_columns(scaled_code)
        candidate = _rebuild_record(record, scaled_code, f"x{config.scale_factor}")
        if candidate.data_race == record.data_race and (
            not record.has_race or candidate.var_pairs
        ):
            variants.append(AugmentedRecord(candidate, record.name, "scale"))

    if config.token_limit is not None:
        variants = [v for v in variants if v.record.token_count <= config.token_limit]
    return variants


_PAIR_LINE_RE = re.compile(
    r"^(?P<prefix>\s*Data race pair:\s*)(?P<first>.+?)\s+vs\.\s+(?P<second>.+?)\s*$"
)
_ACCESS_RE = re.compile(r"^(?P<name>.+)@(?P<line>\d+):(?P<col>\d+):(?P<op>[RW])$")


def _fix_pair_columns(code: str) -> str:
    """Re-anchor the column numbers in ``Data race pair`` header lines.

    After a textual transform the annotated expression may start at a
    different column of its line; this pass looks the expression up on the
    recorded line and rewrites the column (the line number is preserved by
    construction because transforms never add or remove lines).
    """
    lines = code.splitlines()

    def fix_access(access: str) -> str:
        match = _ACCESS_RE.match(access.strip())
        if match is None:
            return access
        name, line_no = match.group("name"), int(match.group("line"))
        op = match.group("op")
        if 1 <= line_no <= len(lines):
            col = lines[line_no - 1].find(name)
            if col >= 0:
                return f"{name}@{line_no}:{col + 1}:{op}"
        return access

    out = []
    for line in lines:
        match = _PAIR_LINE_RE.match(line)
        if match is None:
            out.append(line)
            continue
        out.append(
            f"{match.group('prefix')}{fix_access(match.group('first'))} vs. "
            f"{fix_access(match.group('second'))}"
        )
    return "\n".join(out) + ("\n" if code.endswith("\n") else "")


def augment_dataset(
    records: Sequence[DRBMLRecord], config: Optional[AugmentationConfig] = None
) -> List[AugmentedRecord]:
    """Augment every record of a dataset; see :func:`augment_record`."""
    config = config or AugmentationConfig()
    out: List[AugmentedRecord] = []
    for record in records:
        out.extend(augment_record(record, config))
    return out
