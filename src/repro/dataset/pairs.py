"""Prompt–response pair construction for fine-tuning (paper §3.4).

Two pair sets are derived from DRB-ML: *basic-FT* (detection only, Listing 8)
and *advanced-FT* (detection + variable identification, Listing 9).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.dataset.records import DRBMLRecord
from repro.dataset.templates import (
    render_advanced_ft_prompt,
    render_advanced_ft_response,
    render_basic_ft_prompt,
    render_basic_ft_response,
)

__all__ = ["PromptResponsePair", "build_basic_pairs", "build_advanced_pairs"]


@dataclass(frozen=True)
class PromptResponsePair:
    """One fine-tuning example."""

    record_name: str
    prompt: str
    response: str
    label: int
    kind: str  # "basic" or "advanced"

    def to_dict(self) -> dict:
        return {
            "record_name": self.record_name,
            "prompt": self.prompt,
            "response": self.response,
            "label": self.label,
            "kind": self.kind,
        }


def build_basic_pairs(records: Sequence[DRBMLRecord]) -> List[PromptResponsePair]:
    """Build the basic-FT (detection-only) pair set."""
    return [
        PromptResponsePair(
            record_name=record.name,
            prompt=render_basic_ft_prompt(record),
            response=render_basic_ft_response(record),
            label=record.data_race,
            kind="basic",
        )
        for record in records
    ]


def build_advanced_pairs(records: Sequence[DRBMLRecord]) -> List[PromptResponsePair]:
    """Build the advanced-FT (detection + variable identification) pair set."""
    return [
        PromptResponsePair(
            record_name=record.name,
            prompt=render_advanced_ft_prompt(record),
            response=render_advanced_ft_response(record),
            label=record.data_race,
            kind="advanced",
        )
        for record in records
    ]
