"""Comment trimming with line re-mapping.

DRB-ML stores both the original code (``DRB_code``) and a ``trimmed_code``
with every comment removed; the ``var_pairs`` line numbers refer to the
*trimmed* code (paper §3.1: "the 'line' value in DRB-ML is based on the code
without comments").  Because the ground truth of the corpus is recorded
against the original (commented) source, the trimming pass must also return a
mapping from original line numbers to trimmed line numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cparse.lexer import TokenKind, tokenize

__all__ = ["TrimResult", "trim_comments"]


@dataclass
class TrimResult:
    """Result of removing comments from a source file.

    Attributes
    ----------
    trimmed_code:
        The code with all comments removed and fully blank residue lines
        dropped.
    line_map:
        Mapping from 1-based original line numbers to 1-based line numbers in
        ``trimmed_code``.  Lines that vanish (pure comment lines) are absent.
    """

    trimmed_code: str
    line_map: Dict[int, int] = field(default_factory=dict)

    def map_line(self, original_line: int) -> Optional[int]:
        """Trimmed line number for an original line, or ``None`` if removed."""
        return self.line_map.get(original_line)


def _blank_out_comments(source: str) -> List[str]:
    """Return source lines with comment characters replaced by spaces.

    Replacing (rather than deleting) keeps column numbers of the remaining
    code identical to the original file, which is what lets the ground-truth
    columns carry over unchanged to the trimmed code.
    """
    lines = [list(line) for line in source.splitlines()]
    for token in tokenize(source, keep_comments=True):
        if token.kind is not TokenKind.COMMENT:
            continue
        text = token.text
        row, col = token.line - 1, token.col - 1
        for ch in text:
            if ch == "\n":
                row += 1
                col = 0
                continue
            if row < len(lines) and col < len(lines[row]):
                lines[row][col] = " "
            col += 1
    return ["".join(chars) for chars in lines]


def trim_comments(source: str) -> TrimResult:
    """Remove comments and blank-only lines, tracking the line re-mapping."""
    blanked = _blank_out_comments(source)
    out_lines: List[str] = []
    line_map: Dict[int, int] = {}
    for original_idx, text in enumerate(blanked, start=1):
        if text.strip() == "":
            # Drop lines that are empty after comment removal *and* were
            # comment-only or blank in the original; keep intentional blank
            # lines only if they were blank originally?  DRB-ML drops them
            # too, so we drop every blank line for a compact trimmed_code.
            continue
        out_lines.append(text.rstrip())
        line_map[original_idx] = len(out_lines)
    trimmed = "\n".join(out_lines)
    if trimmed:
        trimmed += "\n"
    return TrimResult(trimmed_code=trimmed, line_map=line_map)
