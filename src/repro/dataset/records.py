"""DRB-ML record schema (paper Table 1) and JSON (de)serialisation."""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional

__all__ = ["VarPairRecord", "DRBMLRecord"]


@dataclass(frozen=True)
class VarPairRecord:
    """One ``var_pairs`` entry: a pair of variables involved in a data race.

    Field layout follows Table 1: parallel lists of names, line numbers,
    column numbers and operations; index 0 is VAR0 and index 1 is VAR1 where
    VAR1 depends on VAR0.
    """

    name: List[str]
    line: List[int]
    col: List[int]
    operation: List[str]

    def __post_init__(self) -> None:
        lengths = {len(self.name), len(self.line), len(self.col), len(self.operation)}
        if lengths != {2}:
            raise ValueError("var pair fields must all have exactly two entries")
        for op in self.operation:
            if op not in ("R", "W"):
                raise ValueError(f"operation must be 'R' or 'W', got {op!r}")

    def to_dict(self) -> Dict[str, object]:
        return {"name": list(self.name), "line": list(self.line),
                "col": list(self.col), "operation": list(self.operation)}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "VarPairRecord":
        return cls(
            name=list(data["name"]),
            line=[int(x) for x in data["line"]],
            col=[int(x) for x in data["col"]],
            operation=list(data["operation"]),
        )


@dataclass
class DRBMLRecord:
    """One DRB-ML JSON record (Table 1 schema)."""

    ID: int
    name: str
    DRB_code: str
    trimmed_code: str
    code_len: int
    data_race: int
    data_race_label: str
    var_pairs: List[VarPairRecord] = field(default_factory=list)
    token_count: int = 0
    category: str = ""

    def __post_init__(self) -> None:
        if self.data_race not in (0, 1):
            raise ValueError("data_race must be 0 or 1")
        if self.data_race == 0 and self.var_pairs:
            raise ValueError("race-free records must have empty var_pairs")
        if self.code_len != len(self.trimmed_code):
            raise ValueError("code_len must equal len(trimmed_code)")

    @property
    def has_race(self) -> bool:
        return self.data_race == 1

    def to_dict(self) -> Dict[str, object]:
        return {
            "ID": f"{self.ID:03d}",
            "name": self.name,
            "DRB_code": self.DRB_code,
            "trimmed_code": self.trimmed_code,
            "code_len": self.code_len,
            "data_race": self.data_race,
            "data_race_label": self.data_race_label,
            "var_pairs": [pair.to_dict() for pair in self.var_pairs],
            "token_count": self.token_count,
            "category": self.category,
        }

    def to_json(self, *, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "DRBMLRecord":
        return cls(
            ID=int(data["ID"]),
            name=str(data["name"]),
            DRB_code=str(data["DRB_code"]),
            trimmed_code=str(data["trimmed_code"]),
            code_len=int(data["code_len"]),
            data_race=int(data["data_race"]),
            data_race_label=str(data["data_race_label"]),
            var_pairs=[VarPairRecord.from_dict(p) for p in data.get("var_pairs", [])],
            token_count=int(data.get("token_count", 0)),
            category=str(data.get("category", "")),
        )

    @classmethod
    def from_json(cls, text: str) -> "DRBMLRecord":
        return cls.from_dict(json.loads(text))
