"""Prompt and response templates for fine-tuning pairs (paper Listings 8 & 9).

The detection prompt templates used for *evaluation* (BP1/BP2/AP1/AP2) live
in :mod:`repro.prompting.templates`; this module holds the prompt-response
rendering used to build the DRB-ML fine-tuning sets.
"""

from __future__ import annotations

import json
from typing import List

from repro.dataset.records import DRBMLRecord, VarPairRecord

__all__ = [
    "BASIC_FT_PROMPT",
    "ADVANCED_FT_PROMPT",
    "render_basic_ft_prompt",
    "render_basic_ft_response",
    "render_advanced_ft_prompt",
    "render_advanced_ft_response",
]

#: Listing 8 — basic fine-tuning prompt (data race detection only).
BASIC_FT_PROMPT = """You are an expert in High-Performance Computing. Examine the code presented to you and ascertain if it contains any data races.
Begin with a concise response: either "yes" for the presence of a data race or "no" if absent.

{code}
"""

#: Listing 9 — advanced fine-tuning prompt (detection + variable pairs).
ADVANCED_FT_PROMPT = """You are an expert in High-Performance Computing. Examine the code presented to you and ascertain if it contains any data races.
Detail each occurrence of a data race by specifying the variable pairs involved using the JSON format outlined below:
{{
"variable_names": Names of each pair of variables involved in a data race.
"variable_locations": line numbers of the paired variables within the code.
"operation_types": Corresponding operations, either 'write' or 'read'.
}}
{code}
"""


def render_basic_ft_prompt(record: DRBMLRecord) -> str:
    """Render the Listing 8 prompt for a record's trimmed code."""
    return BASIC_FT_PROMPT.format(code=record.trimmed_code)


def render_basic_ft_response(record: DRBMLRecord) -> str:
    """Render the Listing 8 response: a bare ``yes`` / ``no``."""
    return "yes" if record.has_race else "no"


def _operation_word(op: str) -> str:
    return "write" if op == "W" else "read"


def render_advanced_ft_prompt(record: DRBMLRecord) -> str:
    """Render the Listing 9 prompt for a record's trimmed code."""
    return ADVANCED_FT_PROMPT.format(code=record.trimmed_code)


def render_advanced_ft_response(record: DRBMLRecord) -> str:
    """Render the Listing 9 response: yes/no plus the structured pair JSON."""
    if not record.has_race:
        return '"no",\n{\n"data_race": 0\n}'
    pair: VarPairRecord = record.var_pairs[0]
    payload = {
        "data_race": 1,
        "variable_names": list(pair.name),
        "variable_locations": list(pair.line),
        "operation_types": [_operation_word(op) for op in pair.operation],
    }
    return '"yes",\n' + json.dumps(payload, indent=0)
