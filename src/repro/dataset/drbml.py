"""DRB-ML dataset construction, persistence and subsetting.

:class:`DRBMLDataset` ties the pipeline together (paper §3.1–§3.2):

1. scrape labels and race pairs from each microbenchmark's header comment;
2. trim comments and re-map the pair line numbers onto the trimmed code;
3. compute code length and token count;
4. build the ≤4k-token evaluation subset (198 of 201 entries);
5. derive the basic-FT / advanced-FT prompt–response pair sets;
6. provide the stratified 5-fold splits.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.corpus.generator import CorpusConfig, build_corpus, iter_corpus_span
from repro.corpus.microbenchmark import Microbenchmark, RacePair
from repro.dataset.labels import scrape_race_flag, scrape_var_pairs
from repro.dataset.pairs import PromptResponsePair, build_advanced_pairs, build_basic_pairs
from repro.dataset.records import DRBMLRecord, VarPairRecord
from repro.dataset.splits import FoldAssignment, StratifiedKFold
from repro.dataset.tokenizer import DEFAULT_TOKEN_LIMIT, count_tokens
from repro.dataset.trim import trim_comments

__all__ = [
    "DRBMLDataset",
    "record_from_benchmark",
    "iter_records",
    "iter_token_subset",
    "iter_default_records",
]


def _pair_to_record(pair: RacePair, line_map: Dict[int, int]) -> Optional[VarPairRecord]:
    """Convert a scraped pair (original-code coordinates) to trimmed coordinates."""
    first_line = line_map.get(pair.first.line)
    second_line = line_map.get(pair.second.line)
    if first_line is None or second_line is None:
        return None
    return VarPairRecord(
        name=[pair.first.name, pair.second.name],
        line=[first_line, second_line],
        col=[pair.first.col, pair.second.col],
        operation=[pair.first.operation, pair.second.operation],
    )


def record_from_benchmark(bench: Microbenchmark) -> DRBMLRecord:
    """Build one DRB-ML record from a corpus microbenchmark.

    The labels are scraped from the header comment (not read from the
    generator's internal ground truth) so the pipeline exercises the same
    steps the paper describes.
    """
    has_race = scrape_race_flag(bench.code)
    scraped_pairs = scrape_var_pairs(bench.code)
    trim = trim_comments(bench.code)
    pair_records: List[VarPairRecord] = []
    for pair in scraped_pairs:
        converted = _pair_to_record(pair, trim.line_map)
        if converted is not None:
            pair_records.append(converted)
    return DRBMLRecord(
        ID=bench.index,
        name=bench.name,
        DRB_code=bench.code,
        trimmed_code=trim.trimmed_code,
        code_len=len(trim.trimmed_code),
        data_race=1 if has_race else 0,
        data_race_label=bench.label.value,
        var_pairs=pair_records if has_race else [],
        token_count=count_tokens(trim.trimmed_code),
        category=bench.category,
    )


def iter_records(benchmarks: Iterable[Microbenchmark]) -> Iterator[DRBMLRecord]:
    """Lazily featurise a benchmark stream into DRB-ML records.

    The streaming counterpart of :meth:`DRBMLDataset.from_benchmarks` — one
    record is resident at a time, so a lazy corpus producer composed with
    this stays O(1) in corpus size.
    """
    for bench in benchmarks:
        yield record_from_benchmark(bench)


def iter_token_subset(
    records: Iterable[DRBMLRecord], limit: int = DEFAULT_TOKEN_LIMIT
) -> Iterator[DRBMLRecord]:
    """Streaming counterpart of :meth:`DRBMLDataset.token_subset`."""
    for record in records:
        if record.token_count <= limit:
            yield record


def _featurise_span(
    payload: Tuple[CorpusConfig, int, int, Optional[int]]
) -> List[DRBMLRecord]:
    """Worker for :func:`iter_default_records` (module level: picklable).

    Instantiates *and* featurises a corpus index span in the worker, and
    applies the token filter there too, so oversized records never cross the
    process boundary.
    """
    config, start, stop, token_limit = payload
    records = iter_records(iter_corpus_span(config, start, stop))
    if token_limit is not None:
        records = iter_token_subset(records, token_limit)
    return list(records)


def iter_default_records(
    config: Optional[CorpusConfig] = None,
    *,
    token_limit: Optional[int] = None,
    jobs: int = 1,
    shard_size: Optional[int] = None,
) -> Iterator[DRBMLRecord]:
    """Lazily generate + featurise the default corpus, optionally sharded.

    With ``jobs > 1`` corpus spans are instantiated *and* featurised in
    worker processes with bounded look-ahead (at most ``jobs + 1`` shards in
    flight), and records are yielded in benchmark-index order — the stream
    equals the serial ``iter_records(iter_corpus(config))`` path element for
    element.  ``token_limit`` filters in the worker, before pickling.
    """
    from repro.corpus.generator import corpus_size

    config = config or CorpusConfig()
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    total = corpus_size(config)
    if shard_size is None:
        shard_size = max(1, total // max(1, config.repeats))  # one block per shard
    if shard_size < 1:
        raise ValueError(f"shard_size must be >= 1, got {shard_size}")
    if jobs == 1 or total <= shard_size:
        records = iter_records(iter_corpus_span(config, 1, total + 1))
        if token_limit is not None:
            records = iter_token_subset(records, token_limit)
        yield from records
        return

    import concurrent.futures
    from collections import deque

    spans = iter(
        (config, lo, min(lo + shard_size, total + 1), token_limit)
        for lo in range(1, total + 1, shard_size)
    )
    with concurrent.futures.ProcessPoolExecutor(max_workers=jobs) as pool:
        pending: "deque" = deque()
        for payload in spans:
            pending.append(pool.submit(_featurise_span, payload))
            if len(pending) > jobs:
                break
        while pending:
            yield from pending.popleft().result()
            payload = next(spans, None)
            if payload is not None:
                pending.append(pool.submit(_featurise_span, payload))


@dataclass
class DRBMLDataset:
    """The DRB-ML dataset: records plus derived artefacts."""

    records: List[DRBMLRecord] = field(default_factory=list)

    # -- construction -------------------------------------------------------------

    @classmethod
    def from_benchmarks(cls, benchmarks: Iterable[Microbenchmark]) -> "DRBMLDataset":
        return cls(records=[record_from_benchmark(b) for b in benchmarks])

    @classmethod
    def build_default(cls, config: Optional[CorpusConfig] = None) -> "DRBMLDataset":
        """Build the full 201-record dataset from the default corpus."""
        return cls.from_benchmarks(build_corpus(config))

    # -- container protocol -------------------------------------------------------

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[DRBMLRecord]:
        return iter(self.records)

    def by_name(self, name: str) -> DRBMLRecord:
        for record in self.records:
            if record.name == name:
                return record
        raise KeyError(name)

    # -- statistics ---------------------------------------------------------------

    def positives(self) -> List[DRBMLRecord]:
        return [r for r in self.records if r.has_race]

    def negatives(self) -> List[DRBMLRecord]:
        return [r for r in self.records if not r.has_race]

    def positive_fraction(self) -> float:
        return len(self.positives()) / len(self.records) if self.records else 0.0

    # -- subset and folds ---------------------------------------------------------

    def token_subset(self, limit: int = DEFAULT_TOKEN_LIMIT) -> "DRBMLDataset":
        """The evaluation subset: records whose code fits the token budget."""
        return DRBMLDataset(records=[r for r in self.records if r.token_count <= limit])

    def folds(self, n_folds: int = 5, seed: int = 7) -> List[FoldAssignment]:
        """Stratified folds over this dataset's records (paper §3.5)."""
        items = [(r.name, r.data_race) for r in self.records]
        return StratifiedKFold(n_folds=n_folds, seed=seed).split(items)

    def records_for(self, names: Sequence[str]) -> List[DRBMLRecord]:
        wanted = set(names)
        return [r for r in self.records if r.name in wanted]

    # -- fine-tuning pairs --------------------------------------------------------

    def basic_pairs(self) -> List[PromptResponsePair]:
        return build_basic_pairs(self.records)

    def advanced_pairs(self) -> List[PromptResponsePair]:
        return build_advanced_pairs(self.records)

    # -- persistence --------------------------------------------------------------

    def save(self, directory: Path | str) -> None:
        """Write one JSON file per record (``DRB-ML-XXX.json``) plus an index."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        index = []
        for record in self.records:
            path = directory / f"DRB-ML-{record.ID:03d}.json"
            path.write_text(record.to_json(), encoding="utf-8")
            index.append({"ID": record.ID, "name": record.name, "file": path.name})
        (directory / "index.json").write_text(json.dumps(index, indent=2), encoding="utf-8")

    @classmethod
    def load(cls, directory: Path | str) -> "DRBMLDataset":
        """Load a dataset previously written by :meth:`save`."""
        directory = Path(directory)
        records = []
        for path in sorted(directory.glob("DRB-ML-*.json")):
            records.append(DRBMLRecord.from_json(path.read_text(encoding="utf-8")))
        return cls(records=records)

    def summary(self) -> str:
        """Human-readable dataset summary."""
        subset = self.token_subset()
        return (
            f"DRB-ML: {len(self)} records "
            f"({len(self.positives())} race-yes / {len(self.negatives())} race-free); "
            f"<=4k-token subset: {len(subset)} records "
            f"({len(subset.positives())} / {len(subset.negatives())}), "
            f"positive fraction {subset.positive_fraction():.3f}"
        )
