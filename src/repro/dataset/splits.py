"""Stratified k-fold cross-validation splits (paper §3.5).

The paper constructs five folds from the 198-record subset (100 race-yes,
98 race-free): three folds of 20 positive + 20 negative records and two folds
of 20 positive + 19 negative records.  :class:`StratifiedKFold` reproduces
exactly this allocation (and generalises it to other class counts using the
same largest-remainder scheme).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

__all__ = ["FoldAssignment", "StratifiedKFold"]


@dataclass
class FoldAssignment:
    """Membership of every item in one cross-validation fold."""

    fold_index: int
    test_names: List[str] = field(default_factory=list)
    train_names: List[str] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.test_names)


@dataclass
class StratifiedKFold:
    """Stratified k-fold splitter over (name, label) items.

    Parameters
    ----------
    n_folds:
        Number of folds (the paper uses 5).
    seed:
        Shuffle seed; items of each class are shuffled before being dealt to
        folds so that pattern families spread across folds.
    """

    n_folds: int = 5
    seed: int = 7

    def split(self, items: Sequence[Tuple[str, int]]) -> List[FoldAssignment]:
        """Split ``items`` (name, label) into stratified folds.

        Positive and negative items are dealt into folds separately so every
        fold mirrors the overall class balance; leftover items (when the
        class count is not divisible by the fold count) go to the earliest
        folds, reproducing the paper's 3×(20/20) + 2×(20/19) layout for the
        198-record subset.
        """
        if self.n_folds < 2:
            raise ValueError("need at least two folds")
        names = [name for name, _ in items]
        if len(set(names)) != len(names):
            raise ValueError("item names must be unique")

        rng = random.Random(self.seed)
        by_class: Dict[int, List[str]] = {}
        for name, label in items:
            by_class.setdefault(int(label), []).append(name)

        fold_members: List[List[str]] = [[] for _ in range(self.n_folds)]
        for label in sorted(by_class, reverse=True):
            members = list(by_class[label])
            rng.shuffle(members)
            base = len(members) // self.n_folds
            remainder = len(members) % self.n_folds
            cursor = 0
            for fold in range(self.n_folds):
                take = base + (1 if fold < remainder else 0)
                fold_members[fold].extend(members[cursor : cursor + take])
                cursor += take

        assignments: List[FoldAssignment] = []
        all_names = set(names)
        for fold in range(self.n_folds):
            test = sorted(fold_members[fold])
            train = sorted(all_names - set(test))
            assignments.append(
                FoldAssignment(fold_index=fold, test_names=test, train_names=train)
            )
        return assignments

    def fold_sizes(self, items: Sequence[Tuple[str, int]]) -> List[Tuple[int, int]]:
        """Return (positives, negatives) per fold — used by tests and reports."""
        label_by_name = {name: int(label) for name, label in items}
        sizes: List[Tuple[int, int]] = []
        for assignment in self.split(items):
            pos = sum(1 for n in assignment.test_names if label_by_name[n] == 1)
            neg = len(assignment.test_names) - pos
            sizes.append((pos, neg))
        return sizes
