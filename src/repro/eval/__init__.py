"""Evaluation harness: metrics, pair matching, cross-validation and the
per-table experiment drivers (paper §3.5–§4)."""

from repro.eval.metrics import ConfusionCounts, FoldStatistics, mean_std
from repro.eval.matching import pair_matches, pairs_correct
from repro.eval.crossval import (
    CrossValPlan,
    CrossValResult,
    plan_finetune_crossval,
    run_finetune_crossval,
)
from repro.eval.experiments import (
    PromptEvaluationRow,
    evaluate_inspector,
    evaluate_model_prompt,
    evaluate_variable_identification,
    plan_table2,
    plan_table3,
    plan_table4,
    plan_table5,
    plan_table6,
    run_table2,
    run_table3,
    run_table4,
    run_table5,
    run_table6,
)
from repro.eval.reporting import format_confusion_table, format_crossval_table

__all__ = [
    "ConfusionCounts",
    "FoldStatistics",
    "mean_std",
    "pair_matches",
    "pairs_correct",
    "CrossValPlan",
    "CrossValResult",
    "plan_finetune_crossval",
    "run_finetune_crossval",
    "PromptEvaluationRow",
    "evaluate_inspector",
    "evaluate_model_prompt",
    "evaluate_variable_identification",
    "plan_table2",
    "plan_table3",
    "plan_table4",
    "plan_table5",
    "plan_table6",
    "run_table2",
    "run_table3",
    "run_table4",
    "run_table5",
    "run_table6",
    "format_confusion_table",
    "format_crossval_table",
]
