"""Stratified cross-validation of the fine-tuned models (paper §3.5, §4.2-4.3).

For every fold: fine-tune the open-source model on the training records'
prompt–response pairs, then evaluate both the pre-trained model and the
fine-tuned model on the held-out records.  The result aggregates AVG/SD of
recall, precision and F1 across folds — the layout of Tables 4 and 6.

Like the table drivers, cross-validation splits into a **plan** phase
(:func:`plan_finetune_crossval` — trains every fold's adapter, pure CPU
work, and lays out all base/tuned evaluation requests) and a **reduce**
phase (:meth:`CrossValPlan.reduce` — slices the ordered results back into
per-fold confusion counts).  :func:`run_finetune_crossval` composes the two
through one engine run; the cross-table scheduler instead merges the plan's
requests into its single interleaved run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.dataset.drbml import DRBMLDataset
from repro.dataset.pairs import build_advanced_pairs, build_basic_pairs
from repro.dataset.records import DRBMLRecord
from repro.eval.metrics import ConfusionCounts, FoldStatistics
from repro.llm.base import LanguageModel
from repro.llm.finetune import FineTuneConfig, FineTuner
from repro.llm.zoo import create_model
from repro.prompting.strategy import PromptStrategy

__all__ = ["CrossValPlan", "CrossValResult", "plan_finetune_crossval", "run_finetune_crossval"]


@dataclass
class CrossValResult:
    """Fold-level confusion counts for the base and fine-tuned variants."""

    model: str
    kind: str  # "basic" or "advanced"
    base_folds: List[ConfusionCounts] = field(default_factory=list)
    tuned_folds: List[ConfusionCounts] = field(default_factory=list)

    @property
    def base_stats(self) -> FoldStatistics:
        return FoldStatistics.from_counts(self.base_folds)

    @property
    def tuned_stats(self) -> FoldStatistics:
        return FoldStatistics.from_counts(self.tuned_folds)

    def as_rows(self) -> Dict[str, tuple]:
        """Rows in the Table 4/6 layout keyed by display name."""
        return {
            self.model: self.base_stats.as_row(),
            f"{self.model}-FT": self.tuned_stats.as_row(),
        }


def _fold_requests(model: LanguageModel, records: Sequence[DRBMLRecord], kind: str):
    """Requests scoring one fold's held-out records.

    ``"basic"`` folds use BP1 detection scoring; ``"advanced"`` folds use
    the ADVANCED strategy with pair-correctness scoring — the same two
    scoring modes the Table 2/5 drivers use (``repro.engine.requests``).
    """
    from repro.engine import build_requests

    if kind == "basic":
        return build_requests(model, PromptStrategy.BP1, records, scoring="detection")
    return build_requests(model, PromptStrategy.ADVANCED, records, scoring="pairs")


@dataclass
class CrossValPlan:
    """All of one model's cross-validation requests plus the fold layout.

    ``requests`` holds, for every fold in order, the base model's held-out
    evaluations followed by the tuned model's — the exact order the
    sequential loop issued them, so reducing a slice of an interleaved run
    reproduces its counts bit-for-bit.
    """

    model: str
    kind: str
    requests: List = field(default_factory=list)
    #: Per fold: (base_start, tuned_start, end) offsets into ``requests``.
    fold_spans: List[Tuple[int, int, int]] = field(default_factory=list)

    def reduce(self, store) -> CrossValResult:
        """Slice ordered results back into per-fold confusion counts."""
        from repro.engine import RunResultStore

        result = CrossValResult(model=self.model, kind=self.kind)
        for base_start, tuned_start, end in self.fold_spans:
            result.base_folds.append(
                RunResultStore(store.results[base_start:tuned_start]).confusion()
            )
            result.tuned_folds.append(
                RunResultStore(store.results[tuned_start:end]).confusion()
            )
        return result


def plan_finetune_crossval(
    dataset: DRBMLDataset,
    model_name: str,
    *,
    kind: str = "basic",
    n_folds: int = 5,
    seed: int = 7,
    config: Optional[FineTuneConfig] = None,
    model_factory: Optional[Callable[[str], LanguageModel]] = None,
) -> CrossValPlan:
    """Plan the paper's fine-tuning cross-validation for one model.

    Fine-tunes every fold's adapter here (CPU-only, no model calls) and
    returns the evaluation requests plus the fold layout.  Parameters match
    :func:`run_finetune_crossval`; ``model_factory`` lets benchmarks inject
    e.g. latency-simulated base models.
    """
    if kind not in ("basic", "advanced"):
        raise ValueError("kind must be 'basic' or 'advanced'")
    factory = model_factory or create_model
    plan = CrossValPlan(model=model_name, kind=kind)
    for assignment in dataset.folds(n_folds=n_folds, seed=seed):
        train_records = dataset.records_for(assignment.train_names)
        test_records = dataset.records_for(assignment.test_names)
        base = factory(model_name)
        pairs = (
            build_basic_pairs(train_records)
            if kind == "basic"
            else build_advanced_pairs(train_records)
        )
        tuner = FineTuner(base=base, config=config or FineTuneConfig.for_model(model_name))
        tuned = tuner.fit(pairs)
        base_start = len(plan.requests)
        plan.requests.extend(_fold_requests(base, test_records, kind))
        tuned_start = len(plan.requests)
        plan.requests.extend(_fold_requests(tuned, test_records, kind))
        plan.fold_spans.append((base_start, tuned_start, len(plan.requests)))
    return plan


def run_finetune_crossval(
    dataset: DRBMLDataset,
    model_name: str,
    *,
    kind: str = "basic",
    n_folds: int = 5,
    seed: int = 7,
    config: Optional[FineTuneConfig] = None,
    engine=None,
) -> CrossValResult:
    """Run the paper's fine-tuning cross-validation for one model.

    Parameters
    ----------
    dataset:
        The ≤4k-token DRB-ML subset.
    model_name:
        ``"starchat-beta"`` or ``"llama2-7b"`` (the open-source models).
    kind:
        ``"basic"`` (Table 4, detection) or ``"advanced"`` (Table 6, variable
        identification).
    """
    from repro.engine import resolve_engine

    plan = plan_finetune_crossval(
        dataset, model_name, kind=kind, n_folds=n_folds, seed=seed, config=config
    )
    engine = resolve_engine(engine)
    return plan.reduce(engine.run(plan.requests))
