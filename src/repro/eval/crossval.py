"""Stratified cross-validation of the fine-tuned models (paper §3.5, §4.2-4.3).

For every fold: fine-tune the open-source model on the training records'
prompt–response pairs, then evaluate both the pre-trained model and the
fine-tuned model on the held-out records.  The result aggregates AVG/SD of
recall, precision and F1 across folds — the layout of Tables 4 and 6.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.dataset.drbml import DRBMLDataset
from repro.dataset.pairs import build_advanced_pairs, build_basic_pairs
from repro.dataset.records import DRBMLRecord
from repro.eval.metrics import ConfusionCounts, FoldStatistics
from repro.llm.base import LanguageModel
from repro.llm.finetune import FineTuneConfig, FineTuner
from repro.llm.zoo import create_model
from repro.prompting.strategy import PromptStrategy

__all__ = ["CrossValResult", "run_finetune_crossval"]


@dataclass
class CrossValResult:
    """Fold-level confusion counts for the base and fine-tuned variants."""

    model: str
    kind: str  # "basic" or "advanced"
    base_folds: List[ConfusionCounts] = field(default_factory=list)
    tuned_folds: List[ConfusionCounts] = field(default_factory=list)

    @property
    def base_stats(self) -> FoldStatistics:
        return FoldStatistics.from_counts(self.base_folds)

    @property
    def tuned_stats(self) -> FoldStatistics:
        return FoldStatistics.from_counts(self.tuned_folds)

    def as_rows(self) -> Dict[str, tuple]:
        """Rows in the Table 4/6 layout keyed by display name."""
        return {
            self.model: self.base_stats.as_row(),
            f"{self.model}-FT": self.tuned_stats.as_row(),
        }


def _evaluate_fold(
    engine, model: LanguageModel, records: Sequence[DRBMLRecord], kind: str
) -> ConfusionCounts:
    """Score one fold's held-out records through the execution engine.

    ``"basic"`` folds use BP1 detection scoring; ``"advanced"`` folds use
    the ADVANCED strategy with pair-correctness scoring — the same two
    scoring modes the Table 2/5 drivers use (``repro.engine.requests``).
    """
    from repro.engine import build_requests

    if kind == "basic":
        requests = build_requests(model, PromptStrategy.BP1, records, scoring="detection")
    else:
        requests = build_requests(model, PromptStrategy.ADVANCED, records, scoring="pairs")
    return engine.run_counts(requests)


def run_finetune_crossval(
    dataset: DRBMLDataset,
    model_name: str,
    *,
    kind: str = "basic",
    n_folds: int = 5,
    seed: int = 7,
    config: Optional[FineTuneConfig] = None,
    engine=None,
) -> CrossValResult:
    """Run the paper's fine-tuning cross-validation for one model.

    Parameters
    ----------
    dataset:
        The ≤4k-token DRB-ML subset.
    model_name:
        ``"starchat-beta"`` or ``"llama2-7b"`` (the open-source models).
    kind:
        ``"basic"`` (Table 4, detection) or ``"advanced"`` (Table 6, variable
        identification).
    """
    if kind not in ("basic", "advanced"):
        raise ValueError("kind must be 'basic' or 'advanced'")
    from repro.engine import resolve_engine

    engine = resolve_engine(engine)
    result = CrossValResult(model=model_name, kind=kind)
    folds = dataset.folds(n_folds=n_folds, seed=seed)
    for assignment in folds:
        train_records = dataset.records_for(assignment.train_names)
        test_records = dataset.records_for(assignment.test_names)
        base = create_model(model_name)
        pairs = (
            build_basic_pairs(train_records)
            if kind == "basic"
            else build_advanced_pairs(train_records)
        )
        tuner = FineTuner(base=base, config=config or FineTuneConfig.for_model(model_name))
        tuned = tuner.fit(pairs)
        result.base_folds.append(_evaluate_fold(engine, base, test_records, kind))
        result.tuned_folds.append(_evaluate_fold(engine, tuned, test_records, kind))
    return result
