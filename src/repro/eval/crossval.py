"""Stratified cross-validation of the fine-tuned models (paper §3.5, §4.2-4.3).

For every fold: fine-tune the open-source model on the training records'
prompt–response pairs, then evaluate both the pre-trained model and the
fine-tuned model on the held-out records.  The result aggregates AVG/SD of
recall, precision and F1 across folds — the layout of Tables 4 and 6.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.dataset.drbml import DRBMLDataset
from repro.dataset.pairs import build_advanced_pairs, build_basic_pairs
from repro.dataset.records import DRBMLRecord
from repro.eval.matching import pairs_correct
from repro.eval.metrics import ConfusionCounts, FoldStatistics
from repro.llm.base import LanguageModel
from repro.llm.finetune import FineTuneConfig, FineTuner
from repro.llm.zoo import create_model
from repro.prompting.chains import run_strategy
from repro.prompting.parsing import parse_pairs_response, parse_yes_no
from repro.prompting.strategy import PromptStrategy

__all__ = ["CrossValResult", "run_finetune_crossval"]


@dataclass
class CrossValResult:
    """Fold-level confusion counts for the base and fine-tuned variants."""

    model: str
    kind: str  # "basic" or "advanced"
    base_folds: List[ConfusionCounts] = field(default_factory=list)
    tuned_folds: List[ConfusionCounts] = field(default_factory=list)

    @property
    def base_stats(self) -> FoldStatistics:
        return FoldStatistics.from_counts(self.base_folds)

    @property
    def tuned_stats(self) -> FoldStatistics:
        return FoldStatistics.from_counts(self.tuned_folds)

    def as_rows(self) -> Dict[str, tuple]:
        """Rows in the Table 4/6 layout keyed by display name."""
        return {
            self.model: self.base_stats.as_row(),
            f"{self.model}-FT": self.tuned_stats.as_row(),
        }


def _evaluate_detection(model: LanguageModel, records: Sequence[DRBMLRecord]) -> ConfusionCounts:
    counts = ConfusionCounts()
    for record in records:
        response = run_strategy(model.generate, PromptStrategy.BP1, record.trimmed_code)
        verdict = parse_yes_no(response)
        counts.add(record.has_race, bool(verdict) if verdict is not None else False)
    return counts


def _evaluate_advanced(model: LanguageModel, records: Sequence[DRBMLRecord]) -> ConfusionCounts:
    counts = ConfusionCounts()
    for record in records:
        response = run_strategy(model.generate, PromptStrategy.ADVANCED, record.trimmed_code)
        parsed = parse_pairs_response(response)
        prediction = bool(parsed.race) if parsed.race is not None else parsed.has_pairs
        counts.add(record.has_race, prediction, correct_positive=pairs_correct(parsed, record))
    return counts


def run_finetune_crossval(
    dataset: DRBMLDataset,
    model_name: str,
    *,
    kind: str = "basic",
    n_folds: int = 5,
    seed: int = 7,
    config: Optional[FineTuneConfig] = None,
) -> CrossValResult:
    """Run the paper's fine-tuning cross-validation for one model.

    Parameters
    ----------
    dataset:
        The ≤4k-token DRB-ML subset.
    model_name:
        ``"starchat-beta"`` or ``"llama2-7b"`` (the open-source models).
    kind:
        ``"basic"`` (Table 4, detection) or ``"advanced"`` (Table 6, variable
        identification).
    """
    if kind not in ("basic", "advanced"):
        raise ValueError("kind must be 'basic' or 'advanced'")
    result = CrossValResult(model=model_name, kind=kind)
    folds = dataset.folds(n_folds=n_folds, seed=seed)
    for assignment in folds:
        train_records = dataset.records_for(assignment.train_names)
        test_records = dataset.records_for(assignment.test_names)
        base = create_model(model_name)
        pairs = (
            build_basic_pairs(train_records)
            if kind == "basic"
            else build_advanced_pairs(train_records)
        )
        tuner = FineTuner(base=base, config=config or FineTuneConfig.for_model(model_name))
        tuned = tuner.fit(pairs)
        if kind == "basic":
            result.base_folds.append(_evaluate_detection(base, test_records))
            result.tuned_folds.append(_evaluate_detection(tuned, test_records))
        else:
            result.base_folds.append(_evaluate_advanced(base, test_records))
            result.tuned_folds.append(_evaluate_advanced(tuned, test_records))
    return result
