"""Binary-classification metrics (paper §3.6)."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

__all__ = ["ConfusionCounts", "FoldStatistics", "mean_std"]


@dataclass
class ConfusionCounts:
    """TP/FP/TN/FN counts and the derived recall / precision / F1."""

    tp: int = 0
    fp: int = 0
    tn: int = 0
    fn: int = 0

    def add(self, truth: bool, prediction: bool, *, correct_positive: bool = True) -> None:
        """Record one sample.

        ``correct_positive`` supports the variable-identification scoring
        (paper §3.6 / Table 5): a positive prediction on a positive sample
        only counts as a true positive when the reported details were right;
        otherwise the sample is a false negative.
        """
        if truth:
            if prediction and correct_positive:
                self.tp += 1
            else:
                self.fn += 1
        else:
            if prediction:
                self.fp += 1
            else:
                self.tn += 1

    @property
    def total(self) -> int:
        return self.tp + self.fp + self.tn + self.fn

    @property
    def recall(self) -> float:
        denom = self.tp + self.fn
        return self.tp / denom if denom else 0.0

    @property
    def precision(self) -> float:
        denom = self.tp + self.fp
        return self.tp / denom if denom else 0.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0

    @property
    def accuracy(self) -> float:
        return (self.tp + self.tn) / self.total if self.total else 0.0

    def as_row(self) -> Tuple[int, int, int, int, float, float, float]:
        """The (TP, FP, TN, FN, R, P, F1) row layout used by the paper's tables."""
        return (self.tp, self.fp, self.tn, self.fn, self.recall, self.precision, self.f1)

    def __add__(self, other: "ConfusionCounts") -> "ConfusionCounts":
        return ConfusionCounts(
            tp=self.tp + other.tp,
            fp=self.fp + other.fp,
            tn=self.tn + other.tn,
            fn=self.fn + other.fn,
        )


def mean_std(values: Sequence[float]) -> Tuple[float, float]:
    """Population mean and standard deviation (the paper reports AVG and SD).

    Uses Welford's online algorithm: the naive two-pass formula computes the
    mean of a constant sequence with a rounding error, so the squared
    deviations come out as tiny non-zero values (sd ≈ 5e-17 instead of 0).
    Welford's update adds an exact zero per element once the running mean
    equals the value, so constant input yields sd == 0.0 exactly.
    """
    if not values:
        return (0.0, 0.0)
    mean = 0.0
    m2 = 0.0
    for count, value in enumerate(values, start=1):
        delta = value - mean
        mean += delta / count
        m2 += delta * (value - mean)
    variance = max(m2, 0.0) / len(values)
    return (mean, math.sqrt(variance))


@dataclass
class FoldStatistics:
    """AVG/SD of recall, precision and F1 across cross-validation folds."""

    recalls: List[float]
    precisions: List[float]
    f1s: List[float]

    @classmethod
    def from_counts(cls, fold_counts: Iterable[ConfusionCounts]) -> "FoldStatistics":
        counts = list(fold_counts)
        return cls(
            recalls=[c.recall for c in counts],
            precisions=[c.precision for c in counts],
            f1s=[c.f1 for c in counts],
        )

    @property
    def avg_recall(self) -> float:
        return mean_std(self.recalls)[0]

    @property
    def sd_recall(self) -> float:
        return mean_std(self.recalls)[1]

    @property
    def avg_precision(self) -> float:
        return mean_std(self.precisions)[0]

    @property
    def sd_precision(self) -> float:
        return mean_std(self.precisions)[1]

    @property
    def avg_f1(self) -> float:
        return mean_std(self.f1s)[0]

    @property
    def sd_f1(self) -> float:
        return mean_std(self.f1s)[1]

    def as_row(self) -> Tuple[float, float, float, float, float, float]:
        """(AVG R, SD R, AVG P, SD P, AVG F1, SD F1) — the Table 4/6 layout."""
        return (
            self.avg_recall,
            self.sd_recall,
            self.avg_precision,
            self.sd_precision,
            self.avg_f1,
            self.sd_f1,
        )
