"""Paper-style table rendering.

The benchmark harness prints these tables so the regenerated numbers can be
placed side by side with the paper's (see EXPERIMENTS.md).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from repro.eval.experiments import PromptEvaluationRow

__all__ = ["format_confusion_table", "format_crossval_table"]


def format_confusion_table(rows: Sequence[PromptEvaluationRow], *, title: str = "") -> str:
    """Render rows in the Table 2/3/5 layout (TP FP TN FN R P F1)."""
    lines: List[str] = []
    if title:
        lines.append(title)
    header = f"{'Model':<14s} {'Prompt':<9s} {'TP':>4s} {'FP':>4s} {'TN':>4s} {'FN':>4s} {'R':>7s} {'P':>7s} {'F1':>7s}"
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        tp, fp, tn, fn, r, p, f1 = row.counts.as_row()
        lines.append(
            f"{row.model:<14s} {row.prompt:<9s} {tp:>4d} {fp:>4d} {tn:>4d} {fn:>4d} "
            f"{r:>7.3f} {p:>7.3f} {f1:>7.3f}"
        )
    return "\n".join(lines)


def format_crossval_table(
    rows: Dict[str, Tuple[float, float, float, float, float, float]], *, title: str = ""
) -> str:
    """Render AVG/SD rows in the Table 4/6 layout."""
    lines: List[str] = []
    if title:
        lines.append(title)
    header = (
        f"{'Model':<18s} {'AVG R':>7s} {'SD R':>7s} {'AVG P':>7s} {'SD P':>7s} "
        f"{'AVG F1':>7s} {'SD F1':>7s}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for name, (avg_r, sd_r, avg_p, sd_p, avg_f1, sd_f1) in rows.items():
        lines.append(
            f"{name:<18s} {avg_r:>7.3f} {sd_r:>7.3f} {avg_p:>7.3f} {sd_p:>7.3f} "
            f"{avg_f1:>7.3f} {sd_f1:>7.3f}"
        )
    return "\n".join(lines)
