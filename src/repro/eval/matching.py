"""Variable-pair matching rules for the S2/S3 scoring (paper §3.6, Table 5).

A model's pair report counts as correct for a race-yes record when at least
one reported pair matches one of the record's ground-truth ``var_pairs``.  A
reported pair matches a ground-truth pair when

* the two base variable names agree (as an unordered pair; subscripts are
  ignored for the name comparison, matching how the paper's responses name
  variables),
* the reported line numbers agree with the ground-truth lines (unordered,
  exact, in trimmed-code coordinates), and
* the reported operations agree as a multiset (when the report includes
  operations at all — several models omit them, which the paper tolerates in
  its regex-parsing pipeline).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.dataset.records import DRBMLRecord, VarPairRecord
from repro.prompting.parsing import ParsedPairs

__all__ = ["base_name", "pair_matches", "pairs_correct"]


def base_name(expr: str) -> str:
    """The variable name without subscripts or whitespace (``a[i+1]`` → ``a``)."""
    return expr.split("[", 1)[0].strip()


def _names_match(reported: Tuple[str, str], truth: VarPairRecord) -> bool:
    reported_set = {base_name(reported[0]), base_name(reported[1])}
    truth_set = {base_name(truth.name[0]), base_name(truth.name[1])}
    return reported_set == truth_set


def _lines_match(reported: Optional[Tuple[int, int]], truth: VarPairRecord) -> bool:
    if reported is None:
        return False
    return sorted(reported) == sorted(truth.line)


def _operations_match(reported: Optional[Tuple[str, str]], truth: VarPairRecord) -> bool:
    if reported is None:
        return True  # operations missing from the report are tolerated
    return sorted(reported) == sorted(truth.operation)


def pair_matches(
    names: Tuple[str, str],
    lines: Optional[Tuple[int, int]],
    operations: Optional[Tuple[str, str]],
    truth: VarPairRecord,
) -> bool:
    """Does one reported pair match one ground-truth pair?"""
    return (
        _names_match(names, truth)
        and _lines_match(lines, truth)
        and _operations_match(operations, truth)
    )


def pairs_correct(parsed: ParsedPairs, record: DRBMLRecord) -> bool:
    """Does the parsed response correctly identify a race pair of ``record``?"""
    if not record.has_race or not record.var_pairs or not parsed.has_pairs:
        return False
    for idx, names in enumerate(parsed.names):
        lines = parsed.lines[idx] if idx < len(parsed.lines) else None
        operations = parsed.operations[idx] if idx < len(parsed.operations) else None
        for truth in record.var_pairs:
            if pair_matches(names, lines, operations, truth):
                return True
    return False
