"""Experiment drivers for every table of the paper's evaluation section.

Each ``run_tableN`` function regenerates the corresponding table from scratch
(dataset build → prompts → model calls → parsing → metrics) and returns a
structured result that the reporting module renders in the paper's layout.
The benchmark harness under ``benchmarks/`` calls these drivers.

All model calls flow through an :class:`~repro.engine.core.ExecutionEngine`;
every driver accepts an optional ``engine`` so callers (the CLI's
``--jobs``/``--cache`` flags, the benchmark harness) can share one engine —
and its cache and telemetry — across tables.  When omitted, each call gets
a fresh serial, uncached engine, which reproduces the seed behaviour
exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.corpus.generator import CorpusConfig, build_corpus
from repro.corpus.microbenchmark import Microbenchmark
from repro.dataset.drbml import DRBMLDataset
from repro.dataset.records import DRBMLRecord
from repro.dynamic.inspector import InspectorLikeDetector
from repro.eval.metrics import ConfusionCounts
from repro.llm.base import LanguageModel
from repro.llm.zoo import available_models, create_model
from repro.prompting.strategy import PromptStrategy

__all__ = [
    "PromptEvaluationRow",
    "evaluate_model_prompt",
    "evaluate_inspector",
    "evaluate_variable_identification",
    "run_table2",
    "run_table3",
    "run_table4",
    "run_table5",
    "run_table6",
    "default_subset",
]


@dataclass
class PromptEvaluationRow:
    """One table row: a tool/model under one prompt strategy."""

    model: str
    prompt: str
    counts: ConfusionCounts

    def as_dict(self) -> Dict[str, object]:
        tp, fp, tn, fn, r, p, f1 = self.counts.as_row()
        return {
            "model": self.model,
            "prompt": self.prompt,
            "TP": tp,
            "FP": fp,
            "TN": tn,
            "FN": fn,
            "recall": round(r, 3),
            "precision": round(p, 3),
            "f1": round(f1, 3),
        }


def default_subset(config: Optional[CorpusConfig] = None) -> DRBMLDataset:
    """The ≤4k-token evaluation subset used by every experiment (§3.2)."""
    return DRBMLDataset.build_default(config).token_subset()


def _resolve_engine(engine):
    """Delegates to :func:`repro.engine.resolve_engine`.

    Imported lazily: ``repro.engine`` depends on the leaf modules of this
    package (metrics, matching), so a module-level import here would be
    circular through ``repro.eval.__init__``.
    """
    from repro.engine import resolve_engine

    return resolve_engine(engine)


# ---------------------------------------------------------------------------
# detection experiments (Tables 2 and 3)
# ---------------------------------------------------------------------------


def evaluate_model_prompt(
    model: LanguageModel,
    strategy: PromptStrategy,
    records: Sequence[DRBMLRecord],
    *,
    engine=None,
) -> ConfusionCounts:
    """Run one model under one prompt strategy over the given records."""
    from repro.engine import build_requests

    engine = _resolve_engine(engine)
    return engine.run_counts(build_requests(model, strategy, records, scoring="detection"))


def evaluate_inspector(
    benchmarks: Sequence[Microbenchmark],
    *,
    detector: Optional[InspectorLikeDetector] = None,
    engine=None,
) -> ConfusionCounts:
    """Run the Inspector-like dynamic detector over corpus microbenchmarks."""
    detector = detector or InspectorLikeDetector()
    benchmarks = list(benchmarks)
    predictions = _resolve_engine(engine).map(detector.predict, benchmarks)
    counts = ConfusionCounts()
    for bench, prediction in zip(benchmarks, predictions):
        counts.add(bench.has_race, prediction)
    return counts


def run_table2(
    dataset: Optional[DRBMLDataset] = None,
    *,
    model_name: str = "gpt-3.5-turbo",
    engine=None,
) -> List[PromptEvaluationRow]:
    """Table 2: GPT-3.5-turbo with BP1 vs. BP2."""
    records = (dataset or default_subset()).records
    model = create_model(model_name)
    engine = _resolve_engine(engine)
    rows = []
    for strategy in (PromptStrategy.BP1, PromptStrategy.BP2):
        counts = evaluate_model_prompt(model, strategy, records, engine=engine)
        rows.append(PromptEvaluationRow(model=model_name, prompt=strategy.value, counts=counts))
    return rows


def run_table3(
    dataset: Optional[DRBMLDataset] = None,
    *,
    corpus_config: Optional[CorpusConfig] = None,
    include_inspector: bool = True,
    models: Optional[Sequence[str]] = None,
    strategies: Sequence[PromptStrategy] = (
        PromptStrategy.BP1,
        PromptStrategy.AP1,
        PromptStrategy.AP2,
    ),
    engine=None,
) -> List[PromptEvaluationRow]:
    """Table 3: Inspector baseline plus four LLMs under BP1/AP1/AP2."""
    dataset = dataset or default_subset(corpus_config)
    engine = _resolve_engine(engine)
    rows: List[PromptEvaluationRow] = []
    if include_inspector:
        benchmarks = build_corpus(corpus_config)
        subset_names = {record.name for record in dataset.records}
        benchmarks = [b for b in benchmarks if b.name in subset_names]
        counts = evaluate_inspector(benchmarks, engine=engine)
        rows.append(PromptEvaluationRow(model="Inspector", prompt="N/A", counts=counts))
    for model_name in models or available_models():
        model = create_model(model_name)
        for strategy in strategies:
            counts = evaluate_model_prompt(model, strategy, dataset.records, engine=engine)
            rows.append(
                PromptEvaluationRow(model=model_name, prompt=strategy.value, counts=counts)
            )
    return rows


# ---------------------------------------------------------------------------
# variable identification (Table 5)
# ---------------------------------------------------------------------------


def evaluate_variable_identification(
    model: LanguageModel,
    records: Sequence[DRBMLRecord],
    *,
    engine=None,
) -> ConfusionCounts:
    """Advanced scoring: a positive only counts when the reported pair is right."""
    from repro.engine import build_requests

    engine = _resolve_engine(engine)
    return engine.run_counts(
        build_requests(model, PromptStrategy.ADVANCED, records, scoring="pairs")
    )


def run_table5(
    dataset: Optional[DRBMLDataset] = None,
    *,
    models: Optional[Sequence[str]] = None,
    engine=None,
) -> List[PromptEvaluationRow]:
    """Table 5: pre-trained models on detection + variable identification."""
    records = (dataset or default_subset()).records
    engine = _resolve_engine(engine)
    rows = []
    for model_name in models or available_models():
        model = create_model(model_name)
        counts = evaluate_variable_identification(model, records, engine=engine)
        rows.append(PromptEvaluationRow(model=model_name, prompt="ADVANCED", counts=counts))
    return rows


# ---------------------------------------------------------------------------
# fine-tuning cross-validation (Tables 4 and 6)
# ---------------------------------------------------------------------------


def run_table4(
    dataset: Optional[DRBMLDataset] = None,
    *,
    models: Sequence[str] = ("starchat-beta", "llama2-7b"),
    n_folds: int = 5,
    seed: int = 7,
    engine=None,
):
    """Table 4: basic fine-tuning (detection) under 5-fold cross-validation."""
    from repro.eval.crossval import run_finetune_crossval

    dataset = dataset or default_subset()
    results = {}
    for model_name in models:
        results[model_name] = run_finetune_crossval(
            dataset, model_name, kind="basic", n_folds=n_folds, seed=seed, engine=engine
        )
    return results


def run_table6(
    dataset: Optional[DRBMLDataset] = None,
    *,
    models: Sequence[str] = ("starchat-beta", "llama2-7b"),
    n_folds: int = 5,
    seed: int = 7,
    engine=None,
):
    """Table 6: advanced fine-tuning (variable identification) under 5-fold CV."""
    from repro.eval.crossval import run_finetune_crossval

    dataset = dataset or default_subset()
    results = {}
    for model_name in models:
        results[model_name] = run_finetune_crossval(
            dataset, model_name, kind="advanced", n_folds=n_folds, seed=seed, engine=engine
        )
    return results
