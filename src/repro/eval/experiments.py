"""Experiment drivers for every table of the paper's evaluation section.

Each table is expressed in two phases:

* ``plan_tableN`` — the **plan** phase: build the table's
  :class:`~repro.engine.requests.DetectionRequest` batch (dataset →
  prompts, plus any CPU-side preparation such as fine-tuning the
  cross-validation fold models) and a reducer that will assemble the
  paper-layout rows from scored results.  Planning never calls a model.
* ``run_tableN`` — the familiar driver: execute the plan through an
  :class:`~repro.engine.core.ExecutionEngine` and reduce.  Results are
  unchanged from the pre-plan drivers; the split exists so
  :func:`repro.engine.scheduler.run_all_tables` can interleave **every**
  table's requests into a single engine run instead of serialising five
  drivers.

All drivers accept an optional ``engine`` so callers (the CLI's
``--jobs``/``--executor``/``--cache`` flags, the benchmark harness) can
share one engine — and its cache and telemetry — across tables.  When
omitted, each call gets a fresh serial, uncached engine, which reproduces
the seed behaviour exactly.  ``model_factory`` (default
:func:`repro.llm.zoo.create_model`) lets benchmarks inject e.g.
latency-simulated model instances without changing the plan shape.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.corpus.generator import CorpusConfig, build_corpus
from repro.corpus.microbenchmark import Microbenchmark
from repro.dataset.drbml import DRBMLDataset
from repro.dataset.records import DRBMLRecord
from repro.dynamic.inspector import InspectorLikeDetector
from repro.eval.metrics import ConfusionCounts
from repro.llm.base import LanguageModel
from repro.llm.zoo import available_models, create_model
from repro.prompting.strategy import PromptStrategy

__all__ = [
    "PromptEvaluationRow",
    "iter_detection_requests",
    "evaluate_model_prompt",
    "evaluate_inspector",
    "evaluate_variable_identification",
    "plan_table2",
    "plan_table3",
    "plan_table4",
    "plan_table5",
    "plan_table6",
    "run_table2",
    "run_table3",
    "run_table4",
    "run_table5",
    "run_table6",
    "default_subset",
]

#: Builds a model instance from a zoo name (benchmarks override this).
ModelFactory = Callable[[str], LanguageModel]


@dataclass
class PromptEvaluationRow:
    """One table row: a tool/model under one prompt strategy."""

    model: str
    prompt: str
    counts: ConfusionCounts

    def as_dict(self) -> Dict[str, object]:
        tp, fp, tn, fn, r, p, f1 = self.counts.as_row()
        return {
            "model": self.model,
            "prompt": self.prompt,
            "TP": tp,
            "FP": fp,
            "TN": tn,
            "FN": fn,
            "recall": round(r, 3),
            "precision": round(p, 3),
            "f1": round(f1, 3),
        }


def default_subset(config: Optional[CorpusConfig] = None) -> DRBMLDataset:
    """The ≤4k-token evaluation subset used by every experiment (§3.2)."""
    return DRBMLDataset.build_default(config).token_subset()


def iter_detection_requests(
    model: LanguageModel,
    strategy: PromptStrategy,
    *,
    corpus_config: Optional[CorpusConfig] = None,
    token_limit: Optional[int] = None,
    scoring: Optional[str] = None,
    jobs: int = 1,
):
    """Fully lazy corpus → featurise → request chain for one model/strategy.

    Nothing is materialised: benchmarks are instantiated, featurised into
    records (optionally sharded across ``jobs`` worker processes with
    bounded look-ahead) and wrapped into requests one element at a time as
    the consumer — typically ``ExecutionEngine.run_streaming`` — pulls.
    ``token_limit`` defaults to the §3.2 evaluation budget; pass a different
    limit or ``None``-equivalent large value to keep every record.
    """
    # Lazy imports: same circularity constraint as _resolve_engine.
    from repro.dataset.drbml import iter_default_records
    from repro.dataset.tokenizer import DEFAULT_TOKEN_LIMIT
    from repro.engine import iter_requests

    limit = DEFAULT_TOKEN_LIMIT if token_limit is None else token_limit
    records = iter_default_records(corpus_config, token_limit=limit, jobs=jobs)
    return iter_requests(model, strategy, records, scoring=scoring)


def _resolve_engine(engine):
    """Delegates to :func:`repro.engine.resolve_engine`.

    Imported lazily: ``repro.engine`` depends on the leaf modules of this
    package (metrics, matching), so a module-level import here would be
    circular through ``repro.eval.__init__``.
    """
    from repro.engine import resolve_engine

    return resolve_engine(engine)


# ---------------------------------------------------------------------------
# row-segment bookkeeping shared by the detection-table plans
# ---------------------------------------------------------------------------


class _RowSegments:
    """Maps contiguous result slices back to (model, prompt) table rows."""

    def __init__(self) -> None:
        self._segments: List[tuple] = []

    def add(self, model: str, prompt: str, start: int, end: int) -> None:
        self._segments.append((model, prompt, start, end))

    def reduce(self, store, *, leading_rows: Optional[List[PromptEvaluationRow]] = None):
        from repro.engine import RunResultStore

        rows = list(leading_rows or [])
        for model, prompt, start, end in self._segments:
            counts = RunResultStore(store.results[start:end]).confusion()
            rows.append(PromptEvaluationRow(model=model, prompt=prompt, counts=counts))
        return rows


# ---------------------------------------------------------------------------
# detection experiments (Tables 2 and 3)
# ---------------------------------------------------------------------------


def evaluate_model_prompt(
    model: LanguageModel,
    strategy: PromptStrategy,
    records: Sequence[DRBMLRecord],
    *,
    engine=None,
) -> ConfusionCounts:
    """Run one model under one prompt strategy over the given records."""
    from repro.engine import build_requests

    engine = _resolve_engine(engine)
    return engine.run_counts(build_requests(model, strategy, records, scoring="detection"))


def evaluate_inspector(
    benchmarks: Sequence[Microbenchmark],
    *,
    detector: Optional[InspectorLikeDetector] = None,
    engine=None,
) -> ConfusionCounts:
    """Run the Inspector-like dynamic detector over corpus microbenchmarks."""
    detector = detector or InspectorLikeDetector()
    benchmarks = list(benchmarks)
    predictions = _resolve_engine(engine).map(detector.predict, benchmarks)
    counts = ConfusionCounts()
    for bench, prediction in zip(benchmarks, predictions):
        counts.add(bench.has_race, prediction)
    return counts


def plan_table2(
    dataset: Optional[DRBMLDataset] = None,
    *,
    model_name: str = "gpt-3.5-turbo",
    model_factory: Optional[ModelFactory] = None,
):
    """Plan Table 2: GPT-3.5-turbo with BP1 vs. BP2."""
    from repro.engine import build_requests
    from repro.engine.scheduler import TablePlan

    records = (dataset or default_subset()).records
    model = (model_factory or create_model)(model_name)
    segments = _RowSegments()
    requests = []
    for strategy in (PromptStrategy.BP1, PromptStrategy.BP2):
        start = len(requests)
        requests.extend(build_requests(model, strategy, records, scoring="detection"))
        segments.add(model_name, strategy.value, start, len(requests))
    return TablePlan(table="table2", requests=requests, reduce=segments.reduce)


def run_table2(
    dataset: Optional[DRBMLDataset] = None,
    *,
    model_name: str = "gpt-3.5-turbo",
    engine=None,
) -> List[PromptEvaluationRow]:
    """Table 2: GPT-3.5-turbo with BP1 vs. BP2."""
    return plan_table2(dataset, model_name=model_name).execute(_resolve_engine(engine))


def plan_table3(
    dataset: Optional[DRBMLDataset] = None,
    *,
    corpus_config: Optional[CorpusConfig] = None,
    include_inspector: bool = True,
    models: Optional[Sequence[str]] = None,
    strategies: Sequence[PromptStrategy] = (
        PromptStrategy.BP1,
        PromptStrategy.AP1,
        PromptStrategy.AP2,
    ),
    model_factory: Optional[ModelFactory] = None,
):
    """Plan Table 3: Inspector baseline plus the LLM/strategy grid.

    The Inspector is not an LLM, so its scoring runs in the plan's
    ``prepare`` step (through ``engine.map``, sharing the executor) and its
    row is prepended at reduce time.
    """
    from repro.engine import build_requests
    from repro.engine.scheduler import TablePlan

    dataset = dataset or default_subset(corpus_config)
    factory = model_factory or create_model
    segments = _RowSegments()
    requests = []
    for model_name in models or available_models():
        model = factory(model_name)
        for strategy in strategies:
            start = len(requests)
            requests.extend(
                build_requests(model, strategy, dataset.records, scoring="detection")
            )
            segments.add(model_name, strategy.value, start, len(requests))

    prepared: Dict[str, ConfusionCounts] = {}
    prepare = None
    if include_inspector:
        subset_names = {record.name for record in dataset.records}

        def prepare(engine):
            benchmarks = [
                b for b in build_corpus(corpus_config) if b.name in subset_names
            ]
            prepared["inspector"] = evaluate_inspector(benchmarks, engine=engine)

    def reduce(store):
        leading = []
        if "inspector" in prepared:
            leading.append(
                PromptEvaluationRow(model="Inspector", prompt="N/A", counts=prepared["inspector"])
            )
        return segments.reduce(store, leading_rows=leading)

    return TablePlan(table="table3", requests=requests, reduce=reduce, prepare=prepare)


def run_table3(
    dataset: Optional[DRBMLDataset] = None,
    *,
    corpus_config: Optional[CorpusConfig] = None,
    include_inspector: bool = True,
    models: Optional[Sequence[str]] = None,
    strategies: Sequence[PromptStrategy] = (
        PromptStrategy.BP1,
        PromptStrategy.AP1,
        PromptStrategy.AP2,
    ),
    engine=None,
) -> List[PromptEvaluationRow]:
    """Table 3: Inspector baseline plus four LLMs under BP1/AP1/AP2."""
    plan = plan_table3(
        dataset,
        corpus_config=corpus_config,
        include_inspector=include_inspector,
        models=models,
        strategies=strategies,
    )
    return plan.execute(_resolve_engine(engine))


# ---------------------------------------------------------------------------
# variable identification (Table 5)
# ---------------------------------------------------------------------------


def evaluate_variable_identification(
    model: LanguageModel,
    records: Sequence[DRBMLRecord],
    *,
    engine=None,
) -> ConfusionCounts:
    """Advanced scoring: a positive only counts when the reported pair is right."""
    from repro.engine import build_requests

    engine = _resolve_engine(engine)
    return engine.run_counts(
        build_requests(model, PromptStrategy.ADVANCED, records, scoring="pairs")
    )


def plan_table5(
    dataset: Optional[DRBMLDataset] = None,
    *,
    models: Optional[Sequence[str]] = None,
    model_factory: Optional[ModelFactory] = None,
):
    """Plan Table 5: pre-trained models on variable identification."""
    from repro.engine import build_requests
    from repro.engine.scheduler import TablePlan

    records = (dataset or default_subset()).records
    factory = model_factory or create_model
    segments = _RowSegments()
    requests = []
    for model_name in models or available_models():
        model = factory(model_name)
        start = len(requests)
        requests.extend(
            build_requests(model, PromptStrategy.ADVANCED, records, scoring="pairs")
        )
        segments.add(model_name, "ADVANCED", start, len(requests))
    return TablePlan(table="table5", requests=requests, reduce=segments.reduce)


def run_table5(
    dataset: Optional[DRBMLDataset] = None,
    *,
    models: Optional[Sequence[str]] = None,
    engine=None,
) -> List[PromptEvaluationRow]:
    """Table 5: pre-trained models on detection + variable identification."""
    return plan_table5(dataset, models=models).execute(_resolve_engine(engine))


# ---------------------------------------------------------------------------
# fine-tuning cross-validation (Tables 4 and 6)
# ---------------------------------------------------------------------------


def _plan_crossval_table(
    table: str,
    kind: str,
    dataset: Optional[DRBMLDataset],
    models: Sequence[str],
    n_folds: int,
    seed: int,
    model_factory: Optional[ModelFactory],
):
    """Shared plan builder for Tables 4 and 6.

    Fine-tuning happens here, at plan time — it is pure CPU work on the
    training folds, so by execution time the whole table is detection
    requests the scheduler can interleave with every other table.
    """
    from repro.engine.scheduler import TablePlan
    from repro.eval.crossval import plan_finetune_crossval

    dataset = dataset or default_subset()
    subplans = []
    requests = []
    spans = []
    for model_name in models:
        subplan = plan_finetune_crossval(
            dataset,
            model_name,
            kind=kind,
            n_folds=n_folds,
            seed=seed,
            model_factory=model_factory,
        )
        start = len(requests)
        requests.extend(subplan.requests)
        spans.append((model_name, subplan, start, len(requests)))
        subplans.append(subplan)

    def reduce(store):
        from repro.engine import RunResultStore

        return {
            model_name: subplan.reduce(RunResultStore(store.results[start:end]))
            for model_name, subplan, start, end in spans
        }

    return TablePlan(table=table, requests=requests, reduce=reduce)


def plan_table4(
    dataset: Optional[DRBMLDataset] = None,
    *,
    models: Sequence[str] = ("starchat-beta", "llama2-7b"),
    n_folds: int = 5,
    seed: int = 7,
    model_factory: Optional[ModelFactory] = None,
):
    """Plan Table 4: basic fine-tuning (detection) under cross-validation."""
    return _plan_crossval_table("table4", "basic", dataset, models, n_folds, seed, model_factory)


def run_table4(
    dataset: Optional[DRBMLDataset] = None,
    *,
    models: Sequence[str] = ("starchat-beta", "llama2-7b"),
    n_folds: int = 5,
    seed: int = 7,
    engine=None,
):
    """Table 4: basic fine-tuning (detection) under 5-fold cross-validation."""
    plan = plan_table4(dataset, models=models, n_folds=n_folds, seed=seed)
    return plan.execute(_resolve_engine(engine))


def plan_table6(
    dataset: Optional[DRBMLDataset] = None,
    *,
    models: Sequence[str] = ("starchat-beta", "llama2-7b"),
    n_folds: int = 5,
    seed: int = 7,
    model_factory: Optional[ModelFactory] = None,
):
    """Plan Table 6: advanced fine-tuning (variable identification) under CV."""
    return _plan_crossval_table(
        "table6", "advanced", dataset, models, n_folds, seed, model_factory
    )


def run_table6(
    dataset: Optional[DRBMLDataset] = None,
    *,
    models: Sequence[str] = ("starchat-beta", "llama2-7b"),
    n_folds: int = 5,
    seed: int = 7,
    engine=None,
):
    """Table 6: advanced fine-tuning (variable identification) under 5-fold CV."""
    plan = plan_table6(dataset, models=models, n_folds=n_folds, seed=seed)
    return plan.execute(_resolve_engine(engine))
