"""The end-to-end data-race-detection pipeline (paper Figure 1).

The pipeline offers the two routes the paper studies:

* **prompt engineering** — ask a (simulated) chat model about a code snippet
  using one of the BP1/BP2/AP1/AP2 strategies and parse its response;
* **fine-tuning** — fine-tune an open-source model on DRB-ML prompt–response
  pairs and use the tuned model for detection or variable identification;

plus the traditional-tool baselines (the Inspector-like dynamic detector and
the static detector) used for comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.static_race import StaticRaceDetector
from repro.core.config import PipelineConfig
from repro.corpus.generator import build_corpus
from repro.corpus.microbenchmark import Microbenchmark
from repro.corpus.registry import CorpusRegistry
from repro.dataset.drbml import DRBMLDataset
from repro.dataset.pairs import build_advanced_pairs, build_basic_pairs
from repro.dynamic.inspector import InspectorLikeDetector
from repro.engine import (
    CascadePolicy,
    CostModel,
    ExecutionEngine,
    ResponseCache,
    build_requests,
    iter_requests,
)
from repro.eval.metrics import ConfusionCounts
from repro.llm.base import LanguageModel
from repro.llm.finetune import FineTuneConfig, FineTunedModel, FineTuner
from repro.llm.zoo import available_models, create_model
from repro.prompting.chains import run_strategy
from repro.prompting.parsing import ParsedPairs, parse_pairs_response, parse_yes_no
from repro.prompting.strategy import PromptStrategy

__all__ = ["DetectionOutcome", "DataRacePipeline"]


@dataclass
class DetectionOutcome:
    """Result of asking one model about one code snippet."""

    model: str
    strategy: str
    response: str
    prediction: Optional[bool]
    pairs: Optional[ParsedPairs] = None

    @property
    def says_race(self) -> bool:
        return bool(self.prediction)


class DataRacePipeline:
    """High-level facade over the whole reproduction."""

    def __init__(self, config: Optional[PipelineConfig] = None) -> None:
        self.config = config or PipelineConfig()
        self._registry: Optional[CorpusRegistry] = None
        self._dataset: Optional[DRBMLDataset] = None
        self._models: Dict[str, LanguageModel] = {}
        self._engine: Optional[ExecutionEngine] = None

    # -- lazily built artefacts -----------------------------------------------------

    @property
    def registry(self) -> CorpusRegistry:
        """The DataRaceBench-style corpus."""
        if self._registry is None:
            self._registry = CorpusRegistry(build_corpus(self.config.corpus))
        return self._registry

    @property
    def dataset(self) -> DRBMLDataset:
        """The full 201-record DRB-ML dataset."""
        if self._dataset is None:
            self._dataset = DRBMLDataset.from_benchmarks(self.registry.benchmarks)
        return self._dataset

    def evaluation_subset(self) -> DRBMLDataset:
        """The ≤4k-token evaluation subset (198 records, paper §3.2)."""
        return self.dataset.token_subset(self.config.token_limit)

    def model(self, name: Optional[str] = None) -> LanguageModel:
        """A (cached) model instance from the zoo."""
        name = name or self.config.default_model
        if name not in self._models:
            self._models[name] = create_model(name)
        return self._models[name]

    @staticmethod
    def models() -> List[str]:
        """Model names in the paper's order."""
        return available_models()

    @property
    def engine(self) -> ExecutionEngine:
        """The execution engine every scoring path runs through.

        Built once from the config: ``jobs``/``executor`` select the
        backend (serial, thread, process or async),
        ``cache_entries``/``cache_path`` configure the response cache,
        ``cascade`` routes records through the cheap-tier ladder first.
        Results are identical across these settings; they only change how
        fast the calls run (the cascade additionally changes *which* model
        answers each record, so its results differ by design unless every
        record escalates).
        """
        if self._engine is None:
            cascade = None
            speculate_fallback = None
            if self.config.cascade:
                cascade = CascadePolicy.from_spec(
                    self.config.cascade_tiers,
                    escalate_below=self.config.escalate_below,
                )
                if self.config.speculate:
                    speculate_fallback = cascade.fallback_model
            # One cost model shared by the scheduler and (when cost-aware
            # eviction is on) the cache's eviction policy.
            cost_model = CostModel()
            cache = None
            if self.config.cache_entries > 0:
                cache = ResponseCache(
                    self.config.cache_entries,
                    path=self.config.cache_path,
                    cost_aware_eviction=self.config.cost_aware_eviction,
                    cost_model=cost_model,
                    max_bytes=self.config.cache_max_bytes,
                    ttl_s=self.config.cache_ttl_s,
                    shared_read=self.config.cache_shared_read,
                )
            self._engine = ExecutionEngine(
                jobs=self.config.jobs,
                executor_kind=self.config.executor,
                cache=cache,
                batch_size=self.config.batch_size,
                dispatch=self.config.dispatch,
                lpt=self.config.lpt,
                adaptive_batching=self.config.adaptive_batching,
                cost_model=cost_model,
                max_inflight=self.config.max_inflight,
                coalesce=self.config.coalesce,
                coalesce_window_s=self.config.coalesce_window_s,
                coalesce_max_batch=self.config.coalesce_max_batch,
                speculate=self.config.speculate,
                speculate_after=self.config.speculate_after,
                deadline=self.config.deadline,
                snapshot_transport=self.config.snapshot_transport,
                stream_window=self.config.stream_window,
                cascade=cascade,
                speculate_fallback=speculate_fallback,
                retries=self.config.retries,
                retry_base_ms=self.config.retry_base_ms,
                breaker_threshold=self.config.breaker_threshold,
                breaker_cooldown_s=self.config.breaker_cooldown_s,
                journal=self.config.journal,
            )
        return self._engine

    def close(self) -> None:
        """Release the engine's executor resources (pools, loops), if built.

        Idempotent; the pipeline remains usable — the next engine access
        builds a fresh one.  Also usable as a context manager.
        """
        if self._engine is not None:
            self._engine.close()
            self._engine = None

    def __enter__(self) -> "DataRacePipeline":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def save_cache(self) -> Optional[str]:
        """Persist the response cache to ``config.cache_path``, if both exist.

        Returns the path written, or ``None`` when there is nothing to save
        (caching disabled or no ``cache_path`` configured).  Loading is
        automatic — the engine's cache reads the file on first use — but
        saving is explicit so callers decide when a run's responses are
        worth keeping.
        """
        if self.engine.cache is None or self.config.cache_path is None:
            return None
        return str(self.engine.cache.save())

    # -- route 1: prompt engineering -----------------------------------------------

    def detect(
        self,
        code: str,
        *,
        model: Optional[str] = None,
        strategy: Optional[PromptStrategy] = None,
    ) -> DetectionOutcome:
        """Ask a model whether ``code`` contains a data race."""
        strategy = strategy or self.config.default_strategy
        lm = self.model(model)
        response = run_strategy(lm.generate, strategy, code)
        if strategy.requests_pairs:
            parsed = parse_pairs_response(response)
            return DetectionOutcome(
                model=lm.name,
                strategy=strategy.value,
                response=response,
                prediction=parsed.race,
                pairs=parsed,
            )
        return DetectionOutcome(
            model=lm.name,
            strategy=strategy.value,
            response=response,
            prediction=parse_yes_no(response),
        )

    def identify_variables(self, code: str, *, model: Optional[str] = None) -> DetectionOutcome:
        """Ask a model for the variable pairs causing a race (S2/S3)."""
        return self.detect(code, model=model, strategy=PromptStrategy.ADVANCED)

    # -- route 2: fine-tuning --------------------------------------------------------

    def finetune(
        self,
        model: str,
        *,
        kind: str = "basic",
        train_names: Optional[Sequence[str]] = None,
        config: Optional[FineTuneConfig] = None,
    ) -> FineTunedModel:
        """Fine-tune an open-source model on DRB-ML prompt–response pairs."""
        subset = self.evaluation_subset()
        records = (
            subset.records_for(train_names) if train_names is not None else subset.records
        )
        pairs = build_basic_pairs(records) if kind == "basic" else build_advanced_pairs(records)
        tuner = FineTuner(base=create_model(model), config=config or FineTuneConfig.for_model(model))
        return tuner.fit(pairs)

    # -- traditional baselines -------------------------------------------------------

    def inspector(self) -> InspectorLikeDetector:
        """The Inspector-like dynamic detector baseline."""
        return InspectorLikeDetector()

    def static_detector(self) -> StaticRaceDetector:
        """The static-analysis baseline."""
        return StaticRaceDetector()

    # -- evaluation helpers ----------------------------------------------------------

    def score_model(
        self,
        *,
        model: Optional[str] = None,
        strategy: Optional[PromptStrategy] = None,
        records: Optional[Sequence] = None,
    ) -> ConfusionCounts:
        """Confusion counts of a model/strategy over the evaluation subset.

        Runs through the execution engine (batched, cached, parallel per
        the pipeline config); scoring matches :meth:`detect` exactly — for
        pair-requesting strategies a missing verdict counts as "no race"
        (the ``"pairs-strict"`` mode).  With ``config.stream`` the requests
        flow through :meth:`ExecutionEngine.run_streaming` in bounded
        windows and fold incrementally — identical counts, O(window) memory.
        """
        strategy = strategy or self.config.default_strategy
        records = records if records is not None else self.evaluation_subset().records
        scoring = "pairs-strict" if strategy.requests_pairs else "detection"
        if self.config.stream:
            requests = iter_requests(self.model(model), strategy, records, scoring=scoring)
            return self.engine.run_streaming_counts(requests)
        requests = build_requests(self.model(model), strategy, records, scoring=scoring)
        return self.engine.run_counts(requests)

    def score_inspector(self, benchmarks: Optional[Sequence[Microbenchmark]] = None) -> ConfusionCounts:
        """Confusion counts of the Inspector-like detector over the subset."""
        subset_names = {r.name for r in self.evaluation_subset().records}
        benchmarks = benchmarks or [b for b in self.registry if b.name in subset_names]
        benchmarks = list(benchmarks)
        detector = self.inspector()
        predictions = self.engine.map(detector.predict, benchmarks)
        counts = ConfusionCounts()
        for bench, prediction in zip(benchmarks, predictions):
            counts.add(bench.has_race, prediction)
        return counts
