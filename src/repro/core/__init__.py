"""High-level public API.

:class:`~repro.core.pipeline.DataRacePipeline` wires the whole system
together — corpus, DRB-ML dataset, prompt strategies, models (simulated
LLMs, fine-tuned variants and the traditional detectors) and the evaluation
harness — behind a few methods, mirroring Figure 1 of the paper.
"""

from repro.core.config import PipelineConfig
from repro.core.pipeline import DataRacePipeline, DetectionOutcome

__all__ = ["PipelineConfig", "DataRacePipeline", "DetectionOutcome"]
