"""Configuration of the end-to-end pipeline."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.corpus.generator import CorpusConfig
from repro.dataset.tokenizer import DEFAULT_TOKEN_LIMIT
from repro.prompting.strategy import PromptStrategy

__all__ = ["PipelineConfig"]


@dataclass(frozen=True)
class PipelineConfig:
    """End-to-end pipeline configuration.

    Attributes
    ----------
    corpus:
        Corpus generation configuration (seed, shuffling).
    token_limit:
        Prompt budget for the evaluation subset (paper §3.2 uses 4k).
    default_strategy:
        Prompt strategy used by :meth:`DataRacePipeline.detect` when none is
        given.
    default_model:
        Model used when none is given (GPT-4 is the paper's strongest).
    n_folds, fold_seed:
        Cross-validation layout (paper §3.5 uses 5 stratified folds).
    jobs:
        Execution-engine parallelism: 1 runs serially, N > 1 uses a
        pool of that width.  Results are identical either way.
    executor:
        Executor backend: ``"serial"``, ``"thread"``, ``"process"``,
        ``"async"`` or any kind registered with
        :func:`repro.engine.executors.register_executor`.  ``None`` keeps
        the historical ``jobs`` semantics (serial when 1, thread pool
        otherwise).  Results are identical across backends; only wall
        time changes.
    dispatch:
        Chunk dispatch mode: ``"dynamic"`` (default) merges chunks in
        completion order via the executor's ``map_unordered``;
        ``"ordered"`` is the reference blocking-``map`` path.  Results
        are identical either way.
    lpt:
        Dispatch chunks longest-processing-time first using the engine's
        cost model (falls back to plan order until latencies have been
        observed).
    adaptive_batching:
        Let the cost model scale chunk sizes per (model, strategy) group
        around ``batch_size``; off, every chunk is exactly ``batch_size``.
    batch_size:
        Requests per engine chunk (one chunk = one executor work item).
        The cost model adapts actual chunk sizes around this baseline.
    max_inflight:
        Async backend only: maximum concurrently in-flight chunk
        coroutines (the event-loop semaphore width).  ``None`` falls back
        to ``jobs``, matching the thread backend's worker count.
    coalesce:
        Async backend only: merge concurrent same-(model, strategy) model
        calls into single ``generate_batch_async`` wire calls.  Results
        are identical either way.
    coalesce_window_s, coalesce_max_batch:
        The coalescer's collection window (seconds) and early-flush
        prompt limit.
    speculate:
        Tail-latency control: race a duplicate of any chunk that
        overshoots the cost model's p95 estimate into idle executor
        capacity; the first completion wins.  Results are identical
        either way — speculation only caps straggler wall time.
    speculate_after:
        Straggler threshold multiplier over the p95 per-chunk estimate
        before a duplicate is launched.
    deadline:
        Optional per-run latency budget in seconds: when the predicted
        makespan exceeds it, the engine sheds the lowest-value chunks and
        returns explicit skipped results for them.  ``None`` disables.
    cache_entries:
        In-memory response-cache capacity; 0 disables caching entirely.
    cost_aware_eviction:
        Weight response-cache LRU eviction by the cost model's
        seconds-per-request estimate per model identity, so slow models'
        responses survive longest in a full cache.
    cache_path:
        Optional on-disk response-cache location (a directory of JSONL
        segments; legacy single-file JSON caches still load): loaded
        automatically on first engine use, written by
        :meth:`DataRacePipeline.save_cache`.
    cache_max_bytes:
        Optional byte budget for the in-memory cache tier; eviction runs
        until entries fit, preferring the most bytes reclaimed per
        cost-model second-to-regenerate.  ``None`` leaves only the entry
        count bound.
    cache_ttl_s:
        Optional maximum in-memory age of a cache entry in seconds
        (dropped lazily on lookup, evicted first under pressure); the
        on-disk store is unaffected.  ``None`` disables expiry.
    cache_shared_read:
        Serve on-disk cache entries through the host-wide mmap-backed
        :class:`~repro.engine.sharedstore.SharedSegmentStore` instead of
        loading a private in-memory copy of the segments.  Requires
        ``cache_path``.  Results are identical either way.
    snapshot_transport:
        How the warm cache reaches process-executor workers: ``"shm"``
        (default, shared-memory broadcast with temp-file fallback) or
        ``"file"`` (pickle temp file).  Results are identical either way.
    stream:
        Evaluate through the bounded-memory streaming path: corpus
        generation, featurisation and request construction stay lazy and
        the engine plans/dispatches in windows of ``stream_window``
        requests (``ExecutionEngine.run_streaming``), so peak RSS is
        O(window) instead of O(corpus).  Results are identical either way.
    stream_window:
        Requests resident at once on the streaming path.  ``None`` keeps
        the engine default
        (:data:`repro.engine.core.DEFAULT_STREAM_WINDOW`).
    cascade:
        Route each record through the tiered detection cascade
        (:mod:`repro.engine.cascade`): cheap tiers answer first and only
        low-confidence or disagreeing verdicts escalate to the request's
        own model (the implicit final tier).  Off, scoring is bit-identical
        to the non-cascaded engine.  With ``speculate`` also on, straggler
        chunks race against a cheaper tier's model (cross-backend
        speculation) instead of a same-model duplicate.
    cascade_tiers:
        Comma-separated cheap-tier ladder, cheapest first: ``static``,
        ``inspector``/``dynamic``, or any zoo model name.
    escalate_below:
        Confidence a cheap-tier verdict must reach to resolve a record;
        ``1.0`` escalates everything (≡ LLM-only), ``0.0`` resolves every
        non-shed answer at the first tier.
    retries:
        Per-chunk retry budget for transient model errors: each failing
        chunk backs off exponentially (with deterministic jitter) and
        re-enters the dispatcher instead of blocking a worker; once the
        budget is exhausted its requests come back as explicit failed
        results rather than aborting the run.  ``0`` fails fast — the
        pre-fault-tolerance behaviour, bit-identical results.
    retry_base_ms:
        Base backoff before the first retry; attempt *k* waits
        ``retry_base_ms * 2**k`` milliseconds, jittered.
    breaker_threshold:
        Consecutive failures that open a model's circuit breaker (keyed
        on ``cache_identity``).  While open, the model's chunks reroute
        to the cascade's next-cheaper tier (with ``cascade``) or fail
        fast; after a cooldown one half-open probe decides whether to
        close it again.
    breaker_cooldown_s:
        How long an open breaker waits before letting a probe through.
    journal:
        Optional path of an append-only JSONL run journal of completed
        chunk outcomes; a run re-invoked with the same journal resumes
        by replaying finished work without re-invoking models.  ``None``
        disables checkpointing.
    """

    corpus: CorpusConfig = field(default_factory=CorpusConfig)
    token_limit: int = DEFAULT_TOKEN_LIMIT
    default_strategy: PromptStrategy = PromptStrategy.BP1
    default_model: str = "gpt-4"
    n_folds: int = 5
    fold_seed: int = 7
    jobs: int = 1
    executor: Optional[str] = None
    dispatch: str = "dynamic"
    lpt: bool = True
    adaptive_batching: bool = True
    batch_size: int = 32
    max_inflight: Optional[int] = None
    coalesce: bool = True
    coalesce_window_s: float = 0.002
    coalesce_max_batch: int = 128
    speculate: bool = False
    speculate_after: float = 1.5
    deadline: Optional[float] = None
    cache_entries: int = 65536
    cache_path: Optional[str] = None
    cost_aware_eviction: bool = False
    cache_max_bytes: Optional[int] = None
    cache_ttl_s: Optional[float] = None
    cache_shared_read: bool = False
    snapshot_transport: str = "shm"
    stream: bool = False
    stream_window: Optional[int] = None
    # Tier spec mirrors repro.engine.cascade.DEFAULT_CASCADE_TIERS; kept a
    # literal so importing the config never pulls in the engine package.
    cascade: bool = False
    cascade_tiers: str = "static,gpt-3.5-turbo"
    escalate_below: float = 0.75
    # Fault-tolerance defaults mirror repro.engine.faults; literals for the
    # same reason as the tier spec above.
    retries: int = 0
    retry_base_ms: float = 50.0
    breaker_threshold: int = 5
    breaker_cooldown_s: float = 30.0
    journal: Optional[str] = None
