"""Helper used by pattern generators to emit C source with tracked locations.

Pattern generators need to know the exact 1-based line/column of every access
participating in a seeded data race so that the corpus ground truth matches
the DataRaceBench convention.  :class:`CodeBuilder` appends source lines one
at a time, returns their line numbers, and can resolve the column of an
expression within a line.  After the body is finished, the DRB-style header
comment is prepended and all recorded locations are shifted accordingly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.corpus.microbenchmark import AccessSpec, Microbenchmark, RaceLabel, RacePair

__all__ = ["CodeBuilder"]


@dataclass
class _PendingAccess:
    """An access recorded against body-relative coordinates."""

    spec: AccessSpec


class CodeBuilder:
    """Accumulates C source lines and ground-truth access locations.

    Typical use inside a pattern generator::

        b = CodeBuilder()
        b.include("<stdio.h>")
        b.line("int main()")
        b.line("{")
        ...
        ln = b.line("    a[i] = a[i+1] + 1;")
        write = b.access(ln, "a[i]", "W")
        read = b.access(ln, "a[i+1]", "R")
        b.pair(write, read)
        ...
        bench = b.build(index=1, slug="antidep1", label=RaceLabel.Y1, ...)

    Line numbers handed back by :meth:`line` are *body-relative*; the header
    comment length is only known at :meth:`build` time, which is when every
    recorded access is shifted into final (full-file) coordinates.
    """

    def __init__(self) -> None:
        self._lines: List[str] = []
        self._accesses: List[AccessSpec] = []
        self._pairs: List[tuple] = []

    # -- emission -----------------------------------------------------------------

    def line(self, text: str = "") -> int:
        """Append a source line and return its body-relative 1-based line number."""
        self._lines.append(text)
        return len(self._lines)

    def blank(self) -> int:
        """Append an empty line."""
        return self.line("")

    def lines(self, chunk: str) -> int:
        """Append a multi-line chunk; returns the line number of its first line."""
        first: Optional[int] = None
        for text in chunk.splitlines():
            number = self.line(text)
            if first is None:
                first = number
        return first if first is not None else len(self._lines)

    def include(self, header: str) -> int:
        """Append an ``#include`` directive."""
        return self.line(f"#include {header}")

    # -- ground truth -------------------------------------------------------------

    def access(
        self, line_no: int, expr: str, operation: str, occurrence: int = 1
    ) -> AccessSpec:
        """Record an access to ``expr`` on body line ``line_no``.

        The column is found by locating the ``occurrence``-th appearance of
        ``expr`` in the line text.  Raises :class:`ValueError` when the
        expression is not present, which catches generator bugs early.
        """
        text = self._lines[line_no - 1]
        start = -1
        for _ in range(occurrence):
            start = text.find(expr, start + 1)
            if start < 0:
                raise ValueError(
                    f"expression {expr!r} (occurrence {occurrence}) not found on "
                    f"line {line_no}: {text!r}"
                )
        spec = AccessSpec(name=expr, line=line_no, col=start + 1, operation=operation)
        self._accesses.append(spec)
        return spec

    def pair(self, first: AccessSpec, second: AccessSpec) -> None:
        """Register a ground-truth race pair between two recorded accesses."""
        self._pairs.append((first, second))

    # -- assembly -----------------------------------------------------------------

    @staticmethod
    def _drb_name(index: int, slug: str, variant: str, has_race: bool) -> str:
        suffix = "yes" if has_race else "no"
        return f"DRB{index:03d}-{slug}-{variant}-{suffix}.c"

    def _header_lines(
        self,
        description: str,
        pairs: Sequence[RacePair],
        has_race: bool,
    ) -> List[str]:
        """Build the DRB-style header comment block."""
        out = ["/*"]
        for text in description.splitlines():
            out.append(text)
        if has_race:
            for pair in pairs:
                out.append(pair.drb_comment_form())
        else:
            out.append("No data race present.")
        out.append("*/")
        return out

    def build(
        self,
        *,
        index: int,
        slug: str,
        label: RaceLabel,
        category: str,
        description: str,
        variant: str = "orig",
        num_threads: int = 4,
    ) -> Microbenchmark:
        """Assemble the final :class:`Microbenchmark`.

        The header comment references race-pair locations in *final* file
        coordinates, exactly like DataRaceBench, which means its own length
        must be accounted for before rendering — the number of header lines
        is independent of the shift, so a single pass suffices.
        """
        body_pairs = [RacePair(first, second) for first, second in self._pairs]
        if label.has_race and not body_pairs:
            raise ValueError(f"{slug}: race-yes pattern registered no race pair")
        if not label.has_race and body_pairs:
            raise ValueError(f"{slug}: race-free pattern registered race pairs")

        # The header length does not depend on the shifted line numbers (only
        # on the number of pairs and description lines), so compute it first.
        provisional_header = self._header_lines(description, body_pairs, label.has_race)
        shift = len(provisional_header)
        shifted_pairs = [pair.shifted(shift) for pair in body_pairs]
        header = self._header_lines(description, shifted_pairs, label.has_race)
        assert len(header) == shift, "header length must be independent of the shift"

        code = "\n".join(header + self._lines) + "\n"
        return Microbenchmark(
            index=index,
            name=self._drb_name(index, slug, variant, label.has_race),
            code=code,
            label=label,
            race_pairs=shifted_pairs,
            category=category,
            description=description.strip(),
            num_threads=num_threads,
        )
