"""Pattern generators for the DataRaceBench-style corpus.

Each module in this package contributes a list of :class:`PatternSpec`
objects covering one DRB pattern family (both the race-yes and race-free
variants).  :data:`ALL_PATTERNS` is the ordered concatenation used by
:mod:`repro.corpus.generator` to lay out the 201-program suite.
"""

from repro.corpus.patterns.base import PatternSpec
from repro.corpus.patterns import (
    dependences,
    indirect,
    oversized,
    privatization,
    reductions,
    simd,
    synchronization,
    tasking,
)

#: Every pattern in deterministic order (family order follows the label digits).
ALL_PATTERNS = (
    list(dependences.PATTERNS)
    + list(synchronization.PATTERNS)
    + list(reductions.PATTERNS)
    + list(privatization.PATTERNS)
    + list(simd.PATTERNS)
    + list(tasking.PATTERNS)
    + list(indirect.PATTERNS)
    + list(oversized.PATTERNS)
)

__all__ = ["PatternSpec", "ALL_PATTERNS"]
