"""Family 3 — reduction patterns (labels ``Y3`` / ``N3``).

Race-yes kernels accumulate into a shared variable without a ``reduction``
clause or other protection; race-free ones use ``reduction``, ``critical`` or
``atomic`` correctly.
"""

from __future__ import annotations

from typing import Mapping

from repro.corpus.builder import CodeBuilder
from repro.corpus.microbenchmark import Microbenchmark, RaceLabel
from repro.corpus.patterns.base import PatternSpec, emit_main_epilogue, emit_main_prologue

__all__ = ["PATTERNS"]


# ---------------------------------------------------------------------------
# race-yes builders
# ---------------------------------------------------------------------------


def build_sum_noreduction(b: CodeBuilder, index: int, params: Mapping[str, object]) -> Microbenchmark:
    """``sum += a[i]`` without a reduction clause."""
    n = int(params["n"])
    emit_main_prologue(b)
    b.line("  int i;")
    b.line(f"  int len = {n};")
    b.line(f"  int a[{n}];")
    b.line("  int sum = 0;")
    b.line("  for (i = 0; i < len; i++)")
    b.line("    a[i] = i;")
    b.line("#pragma omp parallel for")
    b.line("  for (i = 0; i < len; i++)")
    ln = b.line("    sum += a[i];")
    write = b.access(ln, "sum", "W")
    read = b.access(ln, "sum", "R")
    b.pair(read, write)
    b.line('  printf("sum=%d\\n", sum);')
    emit_main_epilogue(b)
    return b.build(
        index=index, slug="sumnoreduction", label=RaceLabel.Y3, category="reduction",
        description="Accumulation into a shared sum without a reduction clause.",
        variant=f"var{params.get('variant_idx', 0)}",
    )


def build_dot_noreduction(b: CodeBuilder, index: int, params: Mapping[str, object]) -> Microbenchmark:
    """Dot product accumulating into a shared scalar without reduction."""
    n = int(params["n"])
    emit_main_prologue(b)
    b.line("  int i;")
    b.line(f"  int len = {n};")
    b.line(f"  double x[{n}];")
    b.line(f"  double y[{n}];")
    b.line("  double dot = 0.0;")
    b.line("  for (i = 0; i < len; i++)")
    b.line("  {")
    b.line("    x[i] = i * 0.5;")
    b.line("    y[i] = i * 0.25;")
    b.line("  }")
    b.line("#pragma omp parallel for")
    b.line("  for (i = 0; i < len; i++)")
    ln = b.line("    dot = dot + x[i] * y[i];")
    write = b.access(ln, "dot", "W")
    read = b.access(ln, "dot", "R", occurrence=2)
    b.pair(read, write)
    b.line('  printf("dot=%f\\n", dot);')
    emit_main_epilogue(b)
    return b.build(
        index=index, slug="dotnoreduction", label=RaceLabel.Y3, category="reduction",
        description="Dot product accumulated into a shared scalar without reduction.",
        variant=f"var{params.get('variant_idx', 0)}",
    )


def build_max_noreduction(b: CodeBuilder, index: int, params: Mapping[str, object]) -> Microbenchmark:
    """Maximum search where the shared best value is updated unprotected."""
    n = int(params["n"])
    emit_main_prologue(b)
    b.line("  int i;")
    b.line(f"  int len = {n};")
    b.line(f"  double v[{n}];")
    b.line("  double best = 0.0;")
    b.line("  for (i = 0; i < len; i++)")
    b.line("    v[i] = (i * 13 % len) * 1.0;")
    b.line("#pragma omp parallel for")
    b.line("  for (i = 0; i < len; i++)")
    b.line("  {")
    b.line("    if (v[i] > best)")
    ln = b.line("      best = v[i];")
    write = b.access(ln, "best", "W")
    read = b.access(ln, "v[i]", "R")
    b.pair(read, write)
    b.line("  }")
    emit_main_epilogue(b)
    return b.build(
        index=index, slug="maxnoreduction", label=RaceLabel.Y3, category="reduction",
        description="Maximum reduction implemented with an unprotected shared variable.",
        variant=f"var{params.get('variant_idx', 0)}",
    )


def build_product_noreduction(b: CodeBuilder, index: int, params: Mapping[str, object]) -> Microbenchmark:
    """Product accumulation without reduction."""
    n = int(params["n"])
    emit_main_prologue(b)
    b.line("  int i;")
    b.line(f"  int len = {n};")
    b.line("  double prod = 1.0;")
    b.line("#pragma omp parallel for")
    b.line("  for (i = 1; i <= len; i++)")
    ln = b.line("    prod = prod * (1.0 + 1.0 / i);")
    write = b.access(ln, "prod", "W")
    read = b.access(ln, "prod", "R", occurrence=2)
    b.pair(read, write)
    emit_main_epilogue(b)
    return b.build(
        index=index, slug="prodnoreduction", label=RaceLabel.Y3, category="reduction",
        description="Product accumulation into a shared scalar without reduction.",
        variant=f"var{params.get('variant_idx', 0)}",
    )


def build_two_accumulators(b: CodeBuilder, index: int, params: Mapping[str, object]) -> Microbenchmark:
    """Two shared accumulators (sum and count of squares), both unprotected."""
    n = int(params["n"])
    emit_main_prologue(b)
    b.line("  int i;")
    b.line(f"  int len = {n};")
    b.line(f"  double data[{n}];")
    b.line("  double mean_sum = 0.0;")
    b.line("  double sq_sum = 0.0;")
    b.line("  for (i = 0; i < len; i++)")
    b.line("    data[i] = i * 0.1;")
    b.line("#pragma omp parallel for")
    b.line("  for (i = 0; i < len; i++)")
    b.line("  {")
    ln1 = b.line("    mean_sum = mean_sum + data[i];")
    w1 = b.access(ln1, "mean_sum", "W")
    r1 = b.access(ln1, "mean_sum", "R", occurrence=2)
    ln2 = b.line("    sq_sum = sq_sum + data[i] * data[i];")
    w2 = b.access(ln2, "sq_sum", "W")
    r2 = b.access(ln2, "sq_sum", "R", occurrence=2)
    b.pair(r1, w1)
    b.pair(r2, w2)
    b.line("  }")
    emit_main_epilogue(b)
    return b.build(
        index=index, slug="twoaccumulators", label=RaceLabel.Y3, category="reduction",
        description="Mean and variance accumulators updated without any protection.",
        variant=f"var{params.get('variant_idx', 0)}",
    )


def build_reduction_wrong_var(b: CodeBuilder, index: int, params: Mapping[str, object]) -> Microbenchmark:
    """``reduction(+:sum)`` is present but a second accumulator still races."""
    n = int(params["n"])
    emit_main_prologue(b)
    b.line("  int i;")
    b.line(f"  int len = {n};")
    b.line("  int sum = 0;")
    b.line("  int count_odd = 0;")
    b.line("#pragma omp parallel for reduction(+:sum)")
    b.line("  for (i = 0; i < len; i++)")
    b.line("  {")
    b.line("    sum += i;")
    b.line("    if (i % 2 == 1)")
    ln = b.line("      count_odd = count_odd + 1;")
    write = b.access(ln, "count_odd", "W")
    read = b.access(ln, "count_odd", "R", occurrence=2)
    b.pair(read, write)
    b.line("  }")
    emit_main_epilogue(b)
    return b.build(
        index=index, slug="reductionwrongvar", label=RaceLabel.Y3, category="reduction",
        description=(
            "The reduction clause covers sum but not count_odd, which is still\n"
            "updated by every thread without protection."
        ),
        variant=f"var{params.get('variant_idx', 0)}",
    )


def build_histogram_race(b: CodeBuilder, index: int, params: Mapping[str, object]) -> Microbenchmark:
    """Histogram bins incremented without atomic protection."""
    n = int(params["n"])
    bins = 8
    emit_main_prologue(b)
    b.line("  int i;")
    b.line(f"  int len = {n};")
    b.line(f"  int hist[{bins}];")
    b.line(f"  int nbins = {bins};")
    b.line("  for (i = 0; i < nbins; i++)")
    b.line("    hist[i] = 0;")
    b.line("#pragma omp parallel for")
    b.line("  for (i = 0; i < len; i++)")
    ln = b.line("    hist[i % nbins] = hist[i % nbins] + 1;")
    write = b.access(ln, "hist[i % nbins]", "W")
    read = b.access(ln, "hist[i % nbins]", "R", occurrence=2)
    b.pair(read, write)
    emit_main_epilogue(b)
    return b.build(
        index=index, slug="histnosync", label=RaceLabel.Y3, category="reduction",
        description="Histogram accumulation; many iterations hit the same bin unprotected.",
        variant=f"var{params.get('variant_idx', 0)}",
    )


# ---------------------------------------------------------------------------
# race-free builders
# ---------------------------------------------------------------------------


def build_sum_reduction(b: CodeBuilder, index: int, params: Mapping[str, object]) -> Microbenchmark:
    """Correct ``reduction(+:sum)``."""
    n = int(params["n"])
    emit_main_prologue(b)
    b.line("  int i;")
    b.line(f"  int len = {n};")
    b.line(f"  int a[{n}];")
    b.line("  int sum = 0;")
    b.line("  for (i = 0; i < len; i++)")
    b.line("    a[i] = i;")
    b.line("#pragma omp parallel for reduction(+:sum)")
    b.line("  for (i = 0; i < len; i++)")
    b.line("    sum += a[i];")
    b.line('  printf("sum=%d\\n", sum);')
    emit_main_epilogue(b)
    return b.build(
        index=index, slug="sumreduction", label=RaceLabel.N3, category="reductionok",
        description="Sum accumulated through a reduction(+) clause.",
        variant=f"var{params.get('variant_idx', 0)}",
    )


def build_dot_reduction(b: CodeBuilder, index: int, params: Mapping[str, object]) -> Microbenchmark:
    """Dot product with ``reduction(+:dot)``."""
    n = int(params["n"])
    emit_main_prologue(b)
    b.line("  int i;")
    b.line(f"  int len = {n};")
    b.line(f"  double x[{n}];")
    b.line(f"  double y[{n}];")
    b.line("  double dot = 0.0;")
    b.line("  for (i = 0; i < len; i++)")
    b.line("  {")
    b.line("    x[i] = i * 0.5;")
    b.line("    y[i] = i * 0.25;")
    b.line("  }")
    b.line("#pragma omp parallel for reduction(+:dot)")
    b.line("  for (i = 0; i < len; i++)")
    b.line("    dot = dot + x[i] * y[i];")
    emit_main_epilogue(b)
    return b.build(
        index=index, slug="dotreduction", label=RaceLabel.N3, category="reductionok",
        description="Dot product accumulated through a reduction(+) clause.",
        variant=f"var{params.get('variant_idx', 0)}",
    )


def build_max_reduction(b: CodeBuilder, index: int, params: Mapping[str, object]) -> Microbenchmark:
    """Maximum found through ``reduction(max:best)``."""
    n = int(params["n"])
    emit_main_prologue(b)
    b.line("  int i;")
    b.line(f"  int len = {n};")
    b.line(f"  int v[{n}];")
    b.line("  int best = 0;")
    b.line("  for (i = 0; i < len; i++)")
    b.line("    v[i] = (i * 13) % len;")
    b.line("#pragma omp parallel for reduction(max:best)")
    b.line("  for (i = 0; i < len; i++)")
    b.line("  {")
    b.line("    if (v[i] > best)")
    b.line("      best = v[i];")
    b.line("  }")
    emit_main_epilogue(b)
    return b.build(
        index=index, slug="maxreduction", label=RaceLabel.N3, category="reductionok",
        description="Maximum computed with a reduction(max) clause.",
        variant=f"var{params.get('variant_idx', 0)}",
    )


def build_product_reduction(b: CodeBuilder, index: int, params: Mapping[str, object]) -> Microbenchmark:
    """Product accumulated through ``reduction(*:prod)``."""
    n = int(params["n"])
    emit_main_prologue(b)
    b.line("  int i;")
    b.line(f"  int len = {n};")
    b.line("  double prod = 1.0;")
    b.line("#pragma omp parallel for reduction(*:prod)")
    b.line("  for (i = 1; i <= len; i++)")
    b.line("    prod = prod * (1.0 + 1.0 / i);")
    emit_main_epilogue(b)
    return b.build(
        index=index, slug="prodreduction", label=RaceLabel.N3, category="reductionok",
        description="Product accumulated through a reduction(*) clause.",
        variant=f"var{params.get('variant_idx', 0)}",
    )


def build_double_reduction(b: CodeBuilder, index: int, params: Mapping[str, object]) -> Microbenchmark:
    """Two accumulators, both covered by reduction clauses."""
    n = int(params["n"])
    emit_main_prologue(b)
    b.line("  int i;")
    b.line(f"  int len = {n};")
    b.line(f"  double data[{n}];")
    b.line("  double mean_sum = 0.0;")
    b.line("  double sq_sum = 0.0;")
    b.line("  for (i = 0; i < len; i++)")
    b.line("    data[i] = i * 0.1;")
    b.line("#pragma omp parallel for reduction(+:mean_sum, sq_sum)")
    b.line("  for (i = 0; i < len; i++)")
    b.line("  {")
    b.line("    mean_sum = mean_sum + data[i];")
    b.line("    sq_sum = sq_sum + data[i] * data[i];")
    b.line("  }")
    emit_main_epilogue(b)
    return b.build(
        index=index, slug="doublereduction", label=RaceLabel.N3, category="reductionok",
        description="Two accumulators both listed in the reduction clause.",
        variant=f"var{params.get('variant_idx', 0)}",
    )


def build_sum_critical(b: CodeBuilder, index: int, params: Mapping[str, object]) -> Microbenchmark:
    """Accumulation protected by a critical region instead of reduction."""
    n = int(params["n"])
    emit_main_prologue(b)
    b.line("  int i;")
    b.line(f"  int len = {n};")
    b.line("  int sum = 0;")
    b.line("#pragma omp parallel for")
    b.line("  for (i = 0; i < len; i++)")
    b.line("  {")
    b.line("#pragma omp critical")
    b.line("    sum = sum + i;")
    b.line("  }")
    emit_main_epilogue(b)
    return b.build(
        index=index, slug="sumcritical", label=RaceLabel.N3, category="reductionok",
        description="Shared accumulation protected by a critical region.",
        variant=f"var{params.get('variant_idx', 0)}",
    )


def build_sum_atomic(b: CodeBuilder, index: int, params: Mapping[str, object]) -> Microbenchmark:
    """Accumulation protected by ``atomic``."""
    n = int(params["n"])
    emit_main_prologue(b)
    b.line("  int i;")
    b.line(f"  int len = {n};")
    b.line("  int sum = 0;")
    b.line("#pragma omp parallel for")
    b.line("  for (i = 0; i < len; i++)")
    b.line("  {")
    b.line("#pragma omp atomic")
    b.line("    sum += i;")
    b.line("  }")
    emit_main_epilogue(b)
    return b.build(
        index=index, slug="sumatomic", label=RaceLabel.N3, category="reductionok",
        description="Shared accumulation protected by an atomic update.",
        variant=f"var{params.get('variant_idx', 0)}",
    )


def build_partial_sums(b: CodeBuilder, index: int, params: Mapping[str, object]) -> Microbenchmark:
    """Thread-local partial sums merged under a critical region."""
    n = int(params["n"])
    emit_main_prologue(b)
    b.line("  int i;")
    b.line(f"  int len = {n};")
    b.line(f"  double data[{n}];")
    b.line("  double total = 0.0;")
    b.line("  for (i = 0; i < len; i++)")
    b.line("    data[i] = i * 0.5;")
    b.line("#pragma omp parallel")
    b.line("  {")
    b.line("    double local_sum = 0.0;")
    b.line("#pragma omp for")
    b.line("    for (i = 0; i < len; i++)")
    b.line("      local_sum = local_sum + data[i];")
    b.line("#pragma omp critical")
    b.line("    total = total + local_sum;")
    b.line("  }")
    emit_main_epilogue(b)
    return b.build(
        index=index, slug="partialsums", label=RaceLabel.N3, category="reductionok",
        description="Manual reduction: block-local partial sums merged under critical.",
        variant=f"var{params.get('variant_idx', 0)}",
    )


PATTERNS = (
    # race-yes: 3 + 2 + 2 + 1 + 2 + 2 + 2 = 14
    PatternSpec("sumnoreduction", RaceLabel.Y3, "reduction", build_sum_noreduction,
                ({"n": 100}, {"n": 200}, {"n": 500})),
    PatternSpec("dotnoreduction", RaceLabel.Y3, "reduction", build_dot_noreduction,
                ({"n": 100}, {"n": 200})),
    PatternSpec("maxnoreduction", RaceLabel.Y3, "reduction", build_max_noreduction,
                ({"n": 100}, {"n": 200})),
    PatternSpec("prodnoreduction", RaceLabel.Y3, "reduction", build_product_noreduction,
                ({"n": 100},)),
    PatternSpec("twoaccumulators", RaceLabel.Y3, "reduction", build_two_accumulators,
                ({"n": 100}, {"n": 200})),
    PatternSpec("reductionwrongvar", RaceLabel.Y3, "reduction", build_reduction_wrong_var,
                ({"n": 100}, {"n": 200})),
    PatternSpec("histnosync", RaceLabel.Y3, "reduction", build_histogram_race,
                ({"n": 100}, {"n": 200})),
    # race-free: 3 + 2 + 2 + 1 + 2 + 2 + 2 + 1 = 15
    PatternSpec("sumreduction", RaceLabel.N3, "reductionok", build_sum_reduction,
                ({"n": 100}, {"n": 200}, {"n": 500})),
    PatternSpec("dotreduction", RaceLabel.N3, "reductionok", build_dot_reduction,
                ({"n": 100}, {"n": 200})),
    PatternSpec("maxreduction", RaceLabel.N3, "reductionok", build_max_reduction,
                ({"n": 100}, {"n": 200})),
    PatternSpec("prodreduction", RaceLabel.N3, "reductionok", build_product_reduction,
                ({"n": 100},)),
    PatternSpec("doublereduction", RaceLabel.N3, "reductionok", build_double_reduction,
                ({"n": 100}, {"n": 200})),
    PatternSpec("sumcritical", RaceLabel.N3, "reductionok", build_sum_critical,
                ({"n": 100}, {"n": 200})),
    PatternSpec("sumatomic", RaceLabel.N3, "reductionok", build_sum_atomic,
                ({"n": 100}, {"n": 200})),
    PatternSpec("partialsums", RaceLabel.N3, "reductionok", build_partial_sums,
                ({"n": 100},)),
)
