"""Family 6 — tasking and sections patterns (labels ``Y6`` / ``N6``).

Race-yes kernels let tasks or sections touch the same storage without
ordering (no ``taskwait``, overlapping section ranges, shared induction
variables); race-free counterparts order or separate the accesses.

Static-analyzer coverage (``repro analyze``): the racy kernels exercise
``DRD-TASK-UNORDERED`` and ``DRD-SECTION-OVERLAP``; the race-free
counterparts are proved by ``DRD-TASKWAIT-ORDERED``,
``DRD-DEPEND-ORDERED``, ``DRD-SEQUENTIAL-CONSTRUCT`` and
``DRD-RANGE-DISJOINT`` (disjoint per-section halves).  The taskgroup and
sequenced-before-spawn edges (``DRD-TASKGROUP-ORDERED``,
``DRD-SEQUENCED-BEFORE-TASK``) are pinned by minimal programs in
``tests/analysis/test_mhp.py`` — adding kernels here changes the pinned
201-record corpus snapshot, so new-rule coverage lives in the unit suite.
"""

from __future__ import annotations

from typing import Mapping

from repro.corpus.builder import CodeBuilder
from repro.corpus.microbenchmark import Microbenchmark, RaceLabel
from repro.corpus.patterns.base import PatternSpec, emit_main_epilogue, emit_main_prologue

__all__ = ["PATTERNS"]


# ---------------------------------------------------------------------------
# race-yes builders
# ---------------------------------------------------------------------------


def build_sections_same_scalar(b: CodeBuilder, index: int, params: Mapping[str, object]) -> Microbenchmark:
    """Two sections write the same shared scalar."""
    scale = int(params.get("scale", 1))
    emit_main_prologue(b)
    b.line("  int result = 0;")
    b.line("#pragma omp parallel sections")
    b.line("  {")
    b.line("#pragma omp section")
    ln1 = b.line(f"    result = {10 * scale};")
    w1 = b.access(ln1, "result", "W")
    b.line("#pragma omp section")
    ln2 = b.line(f"    result = {20 * scale};")
    w2 = b.access(ln2, "result", "W")
    b.pair(w1, w2)
    b.line("  }")
    b.line('  printf("result=%d\\n", result);')
    emit_main_epilogue(b)
    return b.build(
        index=index, slug="sectionssamescalar", label=RaceLabel.Y6, category="tasking",
        description="Two concurrent sections write the same shared scalar.",
        variant=f"var{params.get('variant_idx', 0)}",
        num_threads=2,
    )


def build_sections_overlap_array(b: CodeBuilder, index: int, params: Mapping[str, object]) -> Microbenchmark:
    """Two sections write overlapping ranges of the same array."""
    n = int(params["n"])
    half = n // 2
    emit_main_prologue(b)
    b.line("  int i;")
    b.line(f"  int len = {n};")
    b.line(f"  int a[{n}];")
    b.line("#pragma omp parallel sections private(i)")
    b.line("  {")
    b.line("#pragma omp section")
    b.line(f"    for (i = 0; i < {half + 8}; i++)")
    ln1 = b.line("      a[i] = i;")
    w1 = b.access(ln1, "a[i]", "W")
    b.line("#pragma omp section")
    b.line(f"    for (i = {half - 8}; i < len; i++)")
    ln2 = b.line("      a[i] = i * 2;")
    w2 = b.access(ln2, "a[i]", "W")
    b.pair(w1, w2)
    b.line("  }")
    emit_main_epilogue(b)
    return b.build(
        index=index, slug="sectionsoverlap", label=RaceLabel.Y6, category="tasking",
        description="Two sections write overlapping index ranges of the same array.",
        variant=f"var{params.get('variant_idx', 0)}",
        num_threads=2,
    )


def build_task_no_taskwait(b: CodeBuilder, index: int, params: Mapping[str, object]) -> Microbenchmark:
    """A task writes a result that the generating thread reads without taskwait."""
    value = int(params.get("value", 7))
    emit_main_prologue(b)
    b.line("  int result = 0;")
    b.line("  int consumed = 0;")
    b.line("#pragma omp parallel num_threads(2)")
    b.line("  {")
    b.line("#pragma omp single nowait")
    b.line("    {")
    b.line("#pragma omp task")
    ln_w = b.line(f"      result = {value};")
    write = b.access(ln_w, "result", "W")
    ln_r = b.line("      consumed = result + 1;")
    read = b.access(ln_r, "result", "R")
    b.pair(write, read)
    b.line("    }")
    b.line("  }")
    emit_main_epilogue(b)
    return b.build(
        index=index, slug="tasknotaskwait", label=RaceLabel.Y6, category="tasking",
        description="The parent reads the task's result without an intervening taskwait.",
        variant=f"var{params.get('variant_idx', 0)}",
        num_threads=2,
    )


def build_tasks_shared_counter(b: CodeBuilder, index: int, params: Mapping[str, object]) -> Microbenchmark:
    """Several tasks increment the same counter unprotected."""
    ntasks = int(params.get("ntasks", 4))
    emit_main_prologue(b)
    b.line("  int i;")
    b.line("  int counter = 0;")
    b.line("#pragma omp parallel num_threads(4)")
    b.line("  {")
    b.line("#pragma omp single")
    b.line("    {")
    b.line(f"      for (i = 0; i < {ntasks}; i++)")
    b.line("      {")
    b.line("#pragma omp task")
    ln = b.line("        counter = counter + 1;")
    write = b.access(ln, "counter", "W")
    read = b.access(ln, "counter", "R", occurrence=2)
    b.pair(read, write)
    b.line("      }")
    b.line("    }")
    b.line("  }")
    emit_main_epilogue(b)
    return b.build(
        index=index, slug="taskscounter", label=RaceLabel.Y6, category="tasking",
        description="Concurrent tasks increment a shared counter without protection.",
        variant=f"var{params.get('variant_idx', 0)}",
    )


def build_task_shared_induction(b: CodeBuilder, index: int, params: Mapping[str, object]) -> Microbenchmark:
    """Tasks capture the loop induction variable by reference (missing firstprivate)."""
    n = int(params["n"])
    emit_main_prologue(b)
    b.line("  int i;")
    b.line(f"  int len = {n};")
    b.line(f"  int out[{n}];")
    b.line("#pragma omp parallel num_threads(4)")
    b.line("  {")
    b.line("#pragma omp single")
    b.line("    {")
    b.line("      for (i = 0; i < len; i++)")
    b.line("      {")
    b.line("#pragma omp task shared(i)")
    ln = b.line("        out[i] = i * 2;")
    read = b.access(ln, "i", "R", occurrence=2)
    b.line("      }")
    b.line("    }")
    b.line("  }")
    # The single thread's loop increment writes i while tasks read it.
    inc_line = ln - 3
    write = b.access(inc_line, "i++", "W")
    b.pair(write, read)
    emit_main_epilogue(b)
    return b.build(
        index=index, slug="tasksharedinduction", label=RaceLabel.Y6, category="tasking",
        description=(
            "Tasks share the loop induction variable instead of capturing it\n"
            "firstprivate; the generating loop's increments race with task reads."
        ),
        variant=f"var{params.get('variant_idx', 0)}",
    )


def build_sections_read_write(b: CodeBuilder, index: int, params: Mapping[str, object]) -> Microbenchmark:
    """One section writes an array element the other section reads."""
    n = int(params["n"])
    emit_main_prologue(b)
    b.line("  int i;")
    b.line(f"  int len = {n};")
    b.line(f"  int a[{n}];")
    b.line("  int total = 0;")
    b.line("  for (i = 0; i < len; i++)")
    b.line("    a[i] = i;")
    b.line("#pragma omp parallel sections private(i)")
    b.line("  {")
    b.line("#pragma omp section")
    b.line("    for (i = 0; i < len; i++)")
    ln_w = b.line("      a[i] = a[i] + 1;")
    write = b.access(ln_w, "a[i]", "W")
    b.line("#pragma omp section")
    b.line("    for (i = 0; i < len; i++)")
    ln_r = b.line("      total = total + a[i];")
    read = b.access(ln_r, "a[i]", "R")
    b.pair(write, read)
    b.line("  }")
    emit_main_epilogue(b)
    return b.build(
        index=index, slug="sectionsreadwrite", label=RaceLabel.Y6, category="tasking",
        description="One section updates the array another section is summing.",
        variant=f"var{params.get('variant_idx', 0)}",
        num_threads=2,
    )


# ---------------------------------------------------------------------------
# race-free builders
# ---------------------------------------------------------------------------


def build_sections_disjoint_scalars(b: CodeBuilder, index: int, params: Mapping[str, object]) -> Microbenchmark:
    """Each section writes its own scalar."""
    scale = int(params.get("scale", 1))
    emit_main_prologue(b)
    b.line("  int first_result = 0;")
    b.line("  int second_result = 0;")
    b.line("#pragma omp parallel sections")
    b.line("  {")
    b.line("#pragma omp section")
    b.line(f"    first_result = {10 * scale};")
    b.line("#pragma omp section")
    b.line(f"    second_result = {20 * scale};")
    b.line("  }")
    b.line('  printf("%d %d\\n", first_result, second_result);')
    emit_main_epilogue(b)
    return b.build(
        index=index, slug="sectionsdisjoint", label=RaceLabel.N6, category="taskingok",
        description="Each section writes a distinct scalar; no conflicts.",
        variant=f"var{params.get('variant_idx', 0)}",
        num_threads=2,
    )


def build_sections_disjoint_halves(b: CodeBuilder, index: int, params: Mapping[str, object]) -> Microbenchmark:
    """Sections write strictly disjoint halves of the array."""
    n = int(params["n"])
    half = n // 2
    emit_main_prologue(b)
    b.line("  int i;")
    b.line(f"  int len = {n};")
    b.line(f"  int a[{n}];")
    b.line("#pragma omp parallel sections private(i)")
    b.line("  {")
    b.line("#pragma omp section")
    b.line(f"    for (i = 0; i < {half}; i++)")
    b.line("      a[i] = i;")
    b.line("#pragma omp section")
    b.line(f"    for (i = {half}; i < len; i++)")
    b.line("      a[i] = i * 2;")
    b.line("  }")
    emit_main_epilogue(b)
    return b.build(
        index=index, slug="sectionshalves", label=RaceLabel.N6, category="taskingok",
        description="Two sections write strictly disjoint halves of the array.",
        variant=f"var{params.get('variant_idx', 0)}",
        num_threads=2,
    )


def build_task_with_taskwait(b: CodeBuilder, index: int, params: Mapping[str, object]) -> Microbenchmark:
    """taskwait orders the task's write before the parent's read."""
    value = int(params.get("value", 7))
    emit_main_prologue(b)
    b.line("  int result = 0;")
    b.line("  int consumed = 0;")
    b.line("#pragma omp parallel num_threads(2)")
    b.line("  {")
    b.line("#pragma omp single nowait")
    b.line("    {")
    b.line("#pragma omp task")
    b.line(f"      result = {value};")
    b.line("#pragma omp taskwait")
    b.line("      consumed = result + 1;")
    b.line("    }")
    b.line("  }")
    emit_main_epilogue(b)
    return b.build(
        index=index, slug="tasktaskwait", label=RaceLabel.N6, category="taskingok",
        description="taskwait orders the task's write before the parent's read.",
        variant=f"var{params.get('variant_idx', 0)}",
        num_threads=2,
    )


def build_tasks_depend(b: CodeBuilder, index: int, params: Mapping[str, object]) -> Microbenchmark:
    """Producer/consumer tasks ordered through depend clauses."""
    value = int(params.get("value", 5))
    emit_main_prologue(b)
    b.line("  int buffer = 0;")
    b.line("  int output = 0;")
    b.line("#pragma omp parallel num_threads(2)")
    b.line("  {")
    b.line("#pragma omp single")
    b.line("    {")
    b.line("#pragma omp task depend(out: buffer)")
    b.line(f"      buffer = {value};")
    b.line("#pragma omp task depend(in: buffer)")
    b.line("      output = buffer * 2;")
    b.line("    }")
    b.line("  }")
    emit_main_epilogue(b)
    return b.build(
        index=index, slug="taskdepend", label=RaceLabel.N6, category="taskingok",
        description="Producer and consumer tasks ordered through depend clauses.",
        variant=f"var{params.get('variant_idx', 0)}",
        num_threads=2,
    )


def build_task_firstprivate_induction(b: CodeBuilder, index: int, params: Mapping[str, object]) -> Microbenchmark:
    """Tasks capture the induction variable firstprivate — no race."""
    n = int(params["n"])
    emit_main_prologue(b)
    b.line("  int i;")
    b.line(f"  int len = {n};")
    b.line(f"  int out[{n}];")
    b.line("#pragma omp parallel num_threads(4)")
    b.line("  {")
    b.line("#pragma omp single")
    b.line("    {")
    b.line("      for (i = 0; i < len; i++)")
    b.line("      {")
    b.line("#pragma omp task firstprivate(i)")
    b.line("        out[i] = i * 2;")
    b.line("      }")
    b.line("    }")
    b.line("  }")
    emit_main_epilogue(b)
    return b.build(
        index=index, slug="taskfirstprivate", label=RaceLabel.N6, category="taskingok",
        description="Tasks capture the loop induction variable firstprivate.",
        variant=f"var{params.get('variant_idx', 0)}",
    )


def build_single_tasks_distinct(b: CodeBuilder, index: int, params: Mapping[str, object]) -> Microbenchmark:
    """Each explicitly created task writes a distinct array element."""
    ntasks = int(params.get("ntasks", 4))
    emit_main_prologue(b)
    b.line(f"  int results[{ntasks}];")
    b.line("#pragma omp parallel num_threads(4)")
    b.line("  {")
    b.line("#pragma omp single")
    b.line("    {")
    for k in range(ntasks):
        b.line("#pragma omp task")
        b.line(f"      results[{k}] = {k * 11};")
    b.line("    }")
    b.line("  }")
    emit_main_epilogue(b)
    return b.build(
        index=index, slug="tasksdistinct", label=RaceLabel.N6, category="taskingok",
        description="Each task writes its own array element.",
        variant=f"var{params.get('variant_idx', 0)}",
    )


PATTERNS = (
    # race-yes: 2 + 2 + 2 + 2 + 2 + 2 = 12
    PatternSpec("sectionssamescalar", RaceLabel.Y6, "tasking", build_sections_same_scalar,
                ({"scale": 1}, {"scale": 3})),
    PatternSpec("sectionsoverlap", RaceLabel.Y6, "tasking", build_sections_overlap_array,
                ({"n": 64}, {"n": 128})),
    PatternSpec("tasknotaskwait", RaceLabel.Y6, "tasking", build_task_no_taskwait,
                ({"value": 7}, {"value": 21})),
    PatternSpec("taskscounter", RaceLabel.Y6, "tasking", build_tasks_shared_counter,
                ({"ntasks": 4}, {"ntasks": 8})),
    PatternSpec("tasksharedinduction", RaceLabel.Y6, "tasking", build_task_shared_induction,
                ({"n": 32}, {"n": 64})),
    PatternSpec("sectionsreadwrite", RaceLabel.Y6, "tasking", build_sections_read_write,
                ({"n": 64}, {"n": 128})),
    # race-free: 2 + 2 + 2 + 2 + 2 + 2 = 12
    PatternSpec("sectionsdisjoint", RaceLabel.N6, "taskingok", build_sections_disjoint_scalars,
                ({"scale": 1}, {"scale": 3})),
    PatternSpec("sectionshalves", RaceLabel.N6, "taskingok", build_sections_disjoint_halves,
                ({"n": 64}, {"n": 128})),
    PatternSpec("tasktaskwait", RaceLabel.N6, "taskingok", build_task_with_taskwait,
                ({"value": 7}, {"value": 21})),
    PatternSpec("taskdepend", RaceLabel.N6, "taskingok", build_tasks_depend,
                ({"value": 5}, {"value": 9})),
    PatternSpec("taskfirstprivate", RaceLabel.N6, "taskingok", build_task_firstprivate_induction,
                ({"n": 32}, {"n": 64})),
    PatternSpec("tasksdistinct", RaceLabel.N6, "taskingok", build_single_tasks_distinct,
                ({"ntasks": 4}, {"ntasks": 6})),
)
