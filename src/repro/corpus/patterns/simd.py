"""Family 5 — SIMD patterns (labels ``Y5`` / ``N5``).

Race-yes kernels vectorize loops whose iterations conflict (either through a
``simd`` construct whose lanes overlap, or a combined ``parallel for simd``
with an unprotected accumulator or shared temporary); race-free counterparts
are vectorization-safe.
"""

from __future__ import annotations

from typing import Mapping

from repro.corpus.builder import CodeBuilder
from repro.corpus.microbenchmark import Microbenchmark, RaceLabel
from repro.corpus.patterns.base import PatternSpec, emit_main_epilogue, emit_main_prologue

__all__ = ["PATTERNS"]


def build_simd_forward_dep(b: CodeBuilder, index: int, params: Mapping[str, object]) -> Microbenchmark:
    """``simd`` over a loop with a forward (anti) dependence."""
    n = int(params["n"])
    emit_main_prologue(b)
    b.line("  int i;")
    b.line(f"  int len = {n};")
    b.line(f"  int a[{n}];")
    b.line("  for (i = 0; i < len; i++)")
    b.line("    a[i] = i;")
    b.line("#pragma omp simd")
    b.line("  for (i = 0; i < len - 1; i++)")
    ln = b.line("    a[i] = a[i+1] + 1;")
    write = b.access(ln, "a[i]", "W")
    read = b.access(ln, "a[i+1]", "R")
    b.pair(read, write)
    emit_main_epilogue(b)
    return b.build(
        index=index, slug="simdforwarddep", label=RaceLabel.Y5, category="simd",
        description="SIMD loop whose lanes carry an anti-dependence.",
        variant=f"var{params.get('variant_idx', 0)}",
    )


def build_simd_backward_dep(b: CodeBuilder, index: int, params: Mapping[str, object]) -> Microbenchmark:
    """``simd`` over a loop with a backward (true) dependence."""
    n = int(params["n"])
    emit_main_prologue(b)
    b.line("  int i;")
    b.line(f"  int len = {n};")
    b.line(f"  double a[{n}];")
    b.line("  for (i = 0; i < len; i++)")
    b.line("    a[i] = i * 0.5;")
    b.line("#pragma omp simd")
    b.line("  for (i = 1; i < len; i++)")
    ln = b.line("    a[i] = a[i-1] * 2.0;")
    write = b.access(ln, "a[i]", "W")
    read = b.access(ln, "a[i-1]", "R")
    b.pair(read, write)
    emit_main_epilogue(b)
    return b.build(
        index=index, slug="simdbackwarddep", label=RaceLabel.Y5, category="simd",
        description="SIMD loop whose lanes carry a true dependence.",
        variant=f"var{params.get('variant_idx', 0)}",
    )


def build_parallel_simd_accumulator(b: CodeBuilder, index: int, params: Mapping[str, object]) -> Microbenchmark:
    """``parallel for simd`` accumulating into a shared scalar without reduction."""
    n = int(params["n"])
    emit_main_prologue(b)
    b.line("  int i;")
    b.line(f"  int len = {n};")
    b.line(f"  double v[{n}];")
    b.line("  double total = 0.0;")
    b.line("  for (i = 0; i < len; i++)")
    b.line("    v[i] = i * 0.1;")
    b.line("#pragma omp parallel for simd")
    b.line("  for (i = 0; i < len; i++)")
    ln = b.line("    total = total + v[i];")
    write = b.access(ln, "total", "W")
    read = b.access(ln, "total", "R", occurrence=2)
    b.pair(read, write)
    emit_main_epilogue(b)
    return b.build(
        index=index, slug="simdaccumulator", label=RaceLabel.Y5, category="simd",
        description="Combined parallel for simd with an unprotected accumulator.",
        variant=f"var{params.get('variant_idx', 0)}",
    )


def build_simd_safelen_too_large(b: CodeBuilder, index: int, params: Mapping[str, object]) -> Microbenchmark:
    """``safelen(8)`` declared for a dependence of distance 4 — unsafe lanes."""
    n = int(params["n"])
    emit_main_prologue(b)
    b.line("  int i;")
    b.line(f"  int len = {n};")
    b.line(f"  int a[{n}];")
    b.line("  for (i = 0; i < len; i++)")
    b.line("    a[i] = i;")
    b.line("#pragma omp simd safelen(8)")
    b.line("  for (i = 4; i < len; i++)")
    ln = b.line("    a[i] = a[i-4] + 1;")
    write = b.access(ln, "a[i]", "W")
    read = b.access(ln, "a[i-4]", "R")
    b.pair(read, write)
    emit_main_epilogue(b)
    return b.build(
        index=index, slug="simdsafelenbad", label=RaceLabel.Y5, category="simd",
        description="safelen(8) is larger than the true dependence distance of 4.",
        variant=f"var{params.get('variant_idx', 0)}",
    )


def build_parallel_simd_shared_tmp(b: CodeBuilder, index: int, params: Mapping[str, object]) -> Microbenchmark:
    """Shared temporary inside a combined ``parallel for simd``."""
    n = int(params["n"])
    emit_main_prologue(b)
    b.line("  int i;")
    b.line(f"  int len = {n};")
    b.line(f"  double x[{n}];")
    b.line(f"  double y[{n}];")
    b.line("  double t = 0.0;")
    b.line("  for (i = 0; i < len; i++)")
    b.line("    x[i] = i * 0.5;")
    b.line("#pragma omp parallel for simd")
    b.line("  for (i = 0; i < len; i++)")
    b.line("  {")
    ln_w = b.line("    t = x[i] * x[i];")
    write = b.access(ln_w, "t", "W")
    ln_r = b.line("    y[i] = t + 1.0;")
    read = b.access(ln_r, "t", "R")
    b.pair(write, read)
    b.line("  }")
    emit_main_epilogue(b)
    return b.build(
        index=index, slug="simdsharedtmp", label=RaceLabel.Y5, category="simd",
        description="Shared temporary inside a combined parallel for simd loop.",
        variant=f"var{params.get('variant_idx', 0)}",
    )


# ---------------------------------------------------------------------------
# race-free builders
# ---------------------------------------------------------------------------


def build_simd_independent(b: CodeBuilder, index: int, params: Mapping[str, object]) -> Microbenchmark:
    """SIMD loop over independent elements."""
    n = int(params["n"])
    emit_main_prologue(b)
    b.line("  int i;")
    b.line(f"  int len = {n};")
    b.line(f"  double a[{n}];")
    b.line(f"  double c[{n}];")
    b.line("  for (i = 0; i < len; i++)")
    b.line("    c[i] = i * 0.5;")
    b.line("#pragma omp simd")
    b.line("  for (i = 0; i < len; i++)")
    b.line("    a[i] = c[i] * 3.0;")
    emit_main_epilogue(b)
    return b.build(
        index=index, slug="simdindependent", label=RaceLabel.N5, category="simdok",
        description="Vectorization-safe element-wise SIMD loop.",
        variant=f"var{params.get('variant_idx', 0)}",
    )


def build_simd_reduction(b: CodeBuilder, index: int, params: Mapping[str, object]) -> Microbenchmark:
    """SIMD accumulation with a reduction clause."""
    n = int(params["n"])
    emit_main_prologue(b)
    b.line("  int i;")
    b.line(f"  int len = {n};")
    b.line(f"  double v[{n}];")
    b.line("  double total = 0.0;")
    b.line("  for (i = 0; i < len; i++)")
    b.line("    v[i] = i * 0.1;")
    b.line("#pragma omp simd reduction(+:total)")
    b.line("  for (i = 0; i < len; i++)")
    b.line("    total = total + v[i];")
    emit_main_epilogue(b)
    return b.build(
        index=index, slug="simdreduction", label=RaceLabel.N5, category="simdok",
        description="SIMD accumulation guarded by a reduction clause.",
        variant=f"var{params.get('variant_idx', 0)}",
    )


def build_parallel_simd_ok(b: CodeBuilder, index: int, params: Mapping[str, object]) -> Microbenchmark:
    """Combined ``parallel for simd`` over independent elements."""
    n = int(params["n"])
    emit_main_prologue(b)
    b.line("  int i;")
    b.line(f"  int len = {n};")
    b.line(f"  double x[{n}];")
    b.line(f"  double y[{n}];")
    b.line("  for (i = 0; i < len; i++)")
    b.line("    x[i] = i * 0.5;")
    b.line("#pragma omp parallel for simd")
    b.line("  for (i = 0; i < len; i++)")
    b.line("    y[i] = x[i] * x[i];")
    emit_main_epilogue(b)
    return b.build(
        index=index, slug="parallelsimdok", label=RaceLabel.N5, category="simdok",
        description="Combined parallel for simd over independent elements.",
        variant=f"var{params.get('variant_idx', 0)}",
    )


def build_simd_safelen_ok(b: CodeBuilder, index: int, params: Mapping[str, object]) -> Microbenchmark:
    """``safelen(4)`` no larger than the dependence distance of 8 — safe."""
    n = int(params["n"])
    emit_main_prologue(b)
    b.line("  int i;")
    b.line(f"  int len = {n};")
    b.line(f"  int a[{n}];")
    b.line("  for (i = 0; i < len; i++)")
    b.line("    a[i] = i;")
    b.line("#pragma omp simd safelen(4)")
    b.line("  for (i = 8; i < len; i++)")
    b.line("    a[i] = a[i-8] + 1;")
    emit_main_epilogue(b)
    return b.build(
        index=index, slug="simdsafelenok", label=RaceLabel.N5, category="simdok",
        description="safelen(4) is within the dependence distance of 8; lanes never conflict.",
        variant=f"var{params.get('variant_idx', 0)}",
    )


def build_simd_private_tmp(b: CodeBuilder, index: int, params: Mapping[str, object]) -> Microbenchmark:
    """Combined construct with the temporary privatized."""
    n = int(params["n"])
    emit_main_prologue(b)
    b.line("  int i;")
    b.line(f"  int len = {n};")
    b.line(f"  double x[{n}];")
    b.line(f"  double y[{n}];")
    b.line("  double t = 0.0;")
    b.line("  for (i = 0; i < len; i++)")
    b.line("    x[i] = i * 0.5;")
    b.line("#pragma omp parallel for simd private(t)")
    b.line("  for (i = 0; i < len; i++)")
    b.line("  {")
    b.line("    t = x[i] * x[i];")
    b.line("    y[i] = t + 1.0;")
    b.line("  }")
    emit_main_epilogue(b)
    return b.build(
        index=index, slug="simdprivatetmp", label=RaceLabel.N5, category="simdok",
        description="Combined parallel for simd with the temporary in a private clause.",
        variant=f"var{params.get('variant_idx', 0)}",
    )


PATTERNS = (
    # race-yes: 2 + 2 + 2 + 2 + 2 = 10
    PatternSpec("simdforwarddep", RaceLabel.Y5, "simd", build_simd_forward_dep,
                ({"n": 100}, {"n": 200})),
    PatternSpec("simdbackwarddep", RaceLabel.Y5, "simd", build_simd_backward_dep,
                ({"n": 100}, {"n": 200})),
    PatternSpec("simdaccumulator", RaceLabel.Y5, "simd", build_parallel_simd_accumulator,
                ({"n": 100}, {"n": 200})),
    PatternSpec("simdsafelenbad", RaceLabel.Y5, "simd", build_simd_safelen_too_large,
                ({"n": 100}, {"n": 200})),
    PatternSpec("simdsharedtmp", RaceLabel.Y5, "simd", build_parallel_simd_shared_tmp,
                ({"n": 100}, {"n": 200})),
    # race-free: 2 + 2 + 2 + 2 + 2 = 10
    PatternSpec("simdindependent", RaceLabel.N5, "simdok", build_simd_independent,
                ({"n": 100}, {"n": 200})),
    PatternSpec("simdreduction", RaceLabel.N5, "simdok", build_simd_reduction,
                ({"n": 100}, {"n": 200})),
    PatternSpec("parallelsimdok", RaceLabel.N5, "simdok", build_parallel_simd_ok,
                ({"n": 100}, {"n": 200})),
    PatternSpec("simdsafelenok", RaceLabel.N5, "simdok", build_simd_safelen_ok,
                ({"n": 100}, {"n": 200})),
    PatternSpec("simdprivatetmp", RaceLabel.N5, "simdok", build_simd_private_tmp,
                ({"n": 100}, {"n": 200})),
)
