"""Shared infrastructure for corpus pattern generators.

A :class:`PatternSpec` couples a *builder function* (which emits one concrete
microbenchmark given an index and a parameter dictionary) with the list of
parameter variants the corpus generator should instantiate.  Builders receive
a fresh :class:`~repro.corpus.builder.CodeBuilder` so that every benchmark is
assembled with tracked source locations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Mapping, Sequence, Tuple

from repro.corpus.builder import CodeBuilder
from repro.corpus.microbenchmark import Microbenchmark, RaceLabel

__all__ = ["PatternSpec", "BuilderFn", "emit_main_prologue", "emit_main_epilogue"]

#: Builder functions take (builder, index, params) and return a Microbenchmark.
BuilderFn = Callable[[CodeBuilder, int, Mapping[str, object]], Microbenchmark]


@dataclass(frozen=True)
class PatternSpec:
    """One corpus pattern and the parameter variants to instantiate.

    Attributes
    ----------
    slug:
        Base name used in the DRB-style file name (a variant suffix is added
        automatically when more than one variant exists).
    label:
        The :class:`RaceLabel` every instance of this pattern carries.
    category:
        Human-readable family name (``"antidep"``, ``"reduction"``, ...).
    builder:
        The function that emits one instance.
    variants:
        Parameter dictionaries; one microbenchmark is generated per entry.
    """

    slug: str
    label: RaceLabel
    category: str
    builder: BuilderFn
    variants: Tuple[Dict[str, object], ...] = (dict(),)

    @property
    def has_race(self) -> bool:
        return self.label.has_race

    def instantiate(self, index: int, variant_idx: int) -> Microbenchmark:
        """Build the ``variant_idx``-th variant of this pattern as benchmark ``index``."""
        params = dict(self.variants[variant_idx])
        params.setdefault("variant_idx", variant_idx)
        bench = self.builder(CodeBuilder(), index, params)
        return bench


def emit_main_prologue(
    b: CodeBuilder,
    *,
    includes: Sequence[str] = ("<stdio.h>",),
    with_omp_header: bool = True,
) -> None:
    """Emit ``#include`` lines and the ``int main`` opening."""
    for header in includes:
        b.include(header)
    if with_omp_header:
        b.include("<omp.h>")
    b.line("int main(int argc, char *argv[])")
    b.line("{")


def emit_main_epilogue(b: CodeBuilder, *, result_expr: str = "0") -> None:
    """Emit the ``return``/closing brace of ``main``."""
    b.line(f"  return {result_expr};")
    b.line("}")
