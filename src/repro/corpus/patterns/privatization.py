"""Family 4 — privatization patterns (labels ``Y4`` / ``N4``).

Race-yes kernels keep a per-iteration temporary (or an inner loop index) in
shared storage; race-free counterparts privatize it with ``private``,
``firstprivate``, ``lastprivate`` or a block-local declaration.
"""

from __future__ import annotations

from typing import Mapping

from repro.corpus.builder import CodeBuilder
from repro.corpus.microbenchmark import Microbenchmark, RaceLabel
from repro.corpus.patterns.base import PatternSpec, emit_main_epilogue, emit_main_prologue

__all__ = ["PATTERNS"]


# ---------------------------------------------------------------------------
# race-yes builders
# ---------------------------------------------------------------------------


def build_shared_tmp(b: CodeBuilder, index: int, params: Mapping[str, object]) -> Microbenchmark:
    """A scratch scalar written and read by every iteration without private()."""
    n = int(params["n"])
    emit_main_prologue(b)
    b.line("  int i;")
    b.line(f"  int len = {n};")
    b.line(f"  int a[{n}];")
    b.line(f"  int out[{n}];")
    b.line("  int tmp = 0;")
    b.line("  for (i = 0; i < len; i++)")
    b.line("    a[i] = i;")
    b.line("#pragma omp parallel for")
    b.line("  for (i = 0; i < len; i++)")
    b.line("  {")
    ln_w = b.line("    tmp = a[i] + 1;")
    write = b.access(ln_w, "tmp", "W")
    ln_r = b.line("    out[i] = tmp * 2;")
    read = b.access(ln_r, "tmp", "R")
    b.pair(write, read)
    b.line("  }")
    emit_main_epilogue(b)
    return b.build(
        index=index, slug="sharedtmp", label=RaceLabel.Y4, category="privatization",
        description=(
            "The scratch variable tmp is shared, so the write in one iteration races\n"
            "with the read in another iteration executed by a different thread."
        ),
        variant=f"var{params.get('variant_idx', 0)}",
    )


def build_shared_tmp_2d(b: CodeBuilder, index: int, params: Mapping[str, object]) -> Microbenchmark:
    """Shared temporary inside a 2-D loop nest."""
    n = int(params["n"])
    emit_main_prologue(b)
    b.line("  int i, j;")
    b.line(f"  int n = {n};")
    b.line(f"  double u[{n}][{n}];")
    b.line("  double tmp = 0.0;")
    b.line("  for (i = 0; i < n; i++)")
    b.line("    for (j = 0; j < n; j++)")
    b.line("      u[i][j] = i + j;")
    b.line("#pragma omp parallel for private(j)")
    b.line("  for (i = 0; i < n; i++)")
    b.line("    for (j = 0; j < n; j++)")
    b.line("    {")
    ln_w = b.line("      tmp = u[i][j] * 0.5;")
    write = b.access(ln_w, "tmp", "W")
    ln_r = b.line("      u[i][j] = tmp + 1.0;")
    read = b.access(ln_r, "tmp", "R")
    b.pair(write, read)
    b.line("    }")
    emit_main_epilogue(b)
    return b.build(
        index=index, slug="sharedtmp2d", label=RaceLabel.Y4, category="privatization",
        description="Shared temporary inside a parallelized 2-D loop nest.",
        variant=f"var{params.get('variant_idx', 0)}",
    )


def build_shared_inner_index(b: CodeBuilder, index: int, params: Mapping[str, object]) -> Microbenchmark:
    """The inner loop index is not privatized."""
    n = int(params["n"])
    emit_main_prologue(b)
    b.line("  int i, j;")
    b.line(f"  int n = {n};")
    b.line(f"  double m[{n}][{n}];")
    b.line("#pragma omp parallel for")
    b.line("  for (i = 0; i < n; i++)")
    ln_inner = b.line("    for (j = 0; j < n; j++)")
    b.line("      m[i][j] = i * 1.0 + j;")
    # The shared inner index j is written (j = 0, j++) and read (j < n) by
    # every thread; record the initialisation write against the test read.
    write = b.access(ln_inner, "j", "W", occurrence=1)
    read = b.access(ln_inner, "j", "R", occurrence=2)
    b.pair(write, read)
    emit_main_epilogue(b)
    return b.build(
        index=index, slug="sharedinneridx", label=RaceLabel.Y4, category="privatization",
        description=(
            "The inner loop index j is shared because the parallel for clause only\n"
            "privatizes the outer index; concurrent updates of j race."
        ),
        variant=f"var{params.get('variant_idx', 0)}",
    )


def build_firstprivate_missing(b: CodeBuilder, index: int, params: Mapping[str, object]) -> Microbenchmark:
    """A seed value initialised outside the region is also modified inside it."""
    n = int(params["n"])
    emit_main_prologue(b)
    b.line("  int i;")
    b.line(f"  int len = {n};")
    b.line(f"  int out[{n}];")
    b.line("  int offset = 10;")
    b.line("#pragma omp parallel for")
    b.line("  for (i = 0; i < len; i++)")
    b.line("  {")
    ln_w = b.line("    offset = offset + 1;")
    write = b.access(ln_w, "offset", "W")
    read = b.access(ln_w, "offset", "R", occurrence=2)
    b.line("    out[i] = i + offset;")
    b.pair(read, write)
    b.line("  }")
    emit_main_epilogue(b)
    return b.build(
        index=index, slug="firstprivatemissing", label=RaceLabel.Y4, category="privatization",
        description="offset should have been firstprivate; every thread mutates it.",
        variant=f"var{params.get('variant_idx', 0)}",
    )


def build_lastprivate_missing(b: CodeBuilder, index: int, params: Mapping[str, object]) -> Microbenchmark:
    """The sequentially-last value is needed but the variable is plain shared."""
    n = int(params["n"])
    emit_main_prologue(b)
    b.line("  int i;")
    b.line(f"  int len = {n};")
    b.line(f"  double a[{n}];")
    b.line("  double last_val = 0.0;")
    b.line("  for (i = 0; i < len; i++)")
    b.line("    a[i] = i * 0.5;")
    b.line("#pragma omp parallel for")
    b.line("  for (i = 0; i < len; i++)")
    b.line("  {")
    ln = b.line("    last_val = a[i];")
    write = b.access(ln, "last_val", "W")
    write2 = b.access(ln, "last_val", "W")
    b.pair(write, write2)
    b.line("  }")
    b.line('  printf("last=%f\\n", last_val);')
    emit_main_epilogue(b)
    return b.build(
        index=index, slug="lastprivatemissing", label=RaceLabel.Y4, category="privatization",
        description=(
            "last_val should have been lastprivate; all threads write it and the\n"
            "writes race with one another."
        ),
        variant=f"var{params.get('variant_idx', 0)}",
    )


def build_shared_swap_tmp(b: CodeBuilder, index: int, params: Mapping[str, object]) -> Microbenchmark:
    """A shared swap temporary used by every iteration of a parallel loop."""
    n = int(params["n"])
    emit_main_prologue(b)
    b.line("  int i;")
    b.line(f"  int len = {n};")
    b.line(f"  int a[{n}];")
    b.line(f"  int c[{n}];")
    b.line("  int swap = 0;")
    b.line("  for (i = 0; i < len; i++)")
    b.line("  {")
    b.line("    a[i] = i;")
    b.line("    c[i] = len - i;")
    b.line("  }")
    b.line("#pragma omp parallel for")
    b.line("  for (i = 0; i < len; i++)")
    b.line("  {")
    ln_w = b.line("    swap = a[i];")
    write = b.access(ln_w, "swap", "W")
    b.line("    a[i] = c[i];")
    ln_r = b.line("    c[i] = swap;")
    read = b.access(ln_r, "swap", "R")
    b.pair(write, read)
    b.line("  }")
    emit_main_epilogue(b)
    return b.build(
        index=index, slug="sharedswap", label=RaceLabel.Y4, category="privatization",
        description="Element swap through a shared temporary variable.",
        variant=f"var{params.get('variant_idx', 0)}",
    )


def build_shared_scratch_array(b: CodeBuilder, index: int, params: Mapping[str, object]) -> Microbenchmark:
    """A whole scratch row is shared between threads that each overwrite it."""
    n = int(params["n"])
    emit_main_prologue(b)
    b.line("  int i, j;")
    b.line(f"  int n = {n};")
    b.line(f"  double grid[{n}][{n}];")
    b.line(f"  double scratch[{n}];")
    b.line("  for (i = 0; i < n; i++)")
    b.line("    for (j = 0; j < n; j++)")
    b.line("      grid[i][j] = i + j;")
    b.line("#pragma omp parallel for private(j)")
    b.line("  for (i = 0; i < n; i++)")
    b.line("  {")
    b.line("    for (j = 0; j < n; j++)")
    ln_w = b.line("      scratch[j] = grid[i][j] * 2.0;")
    write = b.access(ln_w, "scratch[j]", "W")
    b.line("    for (j = 0; j < n; j++)")
    ln_r = b.line("      grid[i][j] = scratch[j] + 1.0;")
    read = b.access(ln_r, "scratch[j]", "R")
    b.pair(write, read)
    b.line("  }")
    emit_main_epilogue(b)
    return b.build(
        index=index, slug="sharedscratch", label=RaceLabel.Y4, category="privatization",
        description=(
            "The scratch buffer is shared although every outer iteration overwrites\n"
            "all of it; concurrent iterations race on every element."
        ),
        variant=f"var{params.get('variant_idx', 0)}",
    )


# ---------------------------------------------------------------------------
# race-free builders
# ---------------------------------------------------------------------------


def build_private_tmp(b: CodeBuilder, index: int, params: Mapping[str, object]) -> Microbenchmark:
    """Same kernel as ``sharedtmp`` but with ``private(tmp)``."""
    n = int(params["n"])
    emit_main_prologue(b)
    b.line("  int i;")
    b.line(f"  int len = {n};")
    b.line(f"  int a[{n}];")
    b.line(f"  int out[{n}];")
    b.line("  int tmp = 0;")
    b.line("  for (i = 0; i < len; i++)")
    b.line("    a[i] = i;")
    b.line("#pragma omp parallel for private(tmp)")
    b.line("  for (i = 0; i < len; i++)")
    b.line("  {")
    b.line("    tmp = a[i] + 1;")
    b.line("    out[i] = tmp * 2;")
    b.line("  }")
    emit_main_epilogue(b)
    return b.build(
        index=index, slug="privatetmp", label=RaceLabel.N4, category="privatizationok",
        description="Scratch variable correctly listed in a private clause.",
        variant=f"var{params.get('variant_idx', 0)}",
    )


def build_private_tmp_2d(b: CodeBuilder, index: int, params: Mapping[str, object]) -> Microbenchmark:
    """2-D kernel with both the temporary and inner index privatized."""
    n = int(params["n"])
    emit_main_prologue(b)
    b.line("  int i, j;")
    b.line(f"  int n = {n};")
    b.line(f"  double u[{n}][{n}];")
    b.line("  double tmp = 0.0;")
    b.line("  for (i = 0; i < n; i++)")
    b.line("    for (j = 0; j < n; j++)")
    b.line("      u[i][j] = i + j;")
    b.line("#pragma omp parallel for private(j, tmp)")
    b.line("  for (i = 0; i < n; i++)")
    b.line("    for (j = 0; j < n; j++)")
    b.line("    {")
    b.line("      tmp = u[i][j] * 0.5;")
    b.line("      u[i][j] = tmp + 1.0;")
    b.line("    }")
    emit_main_epilogue(b)
    return b.build(
        index=index, slug="privatetmp2d", label=RaceLabel.N4, category="privatizationok",
        description="2-D nest with the temporary and inner index both privatized.",
        variant=f"var{params.get('variant_idx', 0)}",
    )


def build_private_indices(b: CodeBuilder, index: int, params: Mapping[str, object]) -> Microbenchmark:
    """Nested loops with all indices privatized."""
    n = int(params["n"])
    emit_main_prologue(b)
    b.line("  int i, j;")
    b.line(f"  int n = {n};")
    b.line(f"  double m[{n}][{n}];")
    b.line("#pragma omp parallel for private(i, j)")
    b.line("  for (i = 0; i < n; i++)")
    b.line("    for (j = 0; j < n; j++)")
    b.line("      m[i][j] = i * 1.0 + j;")
    emit_main_epilogue(b)
    return b.build(
        index=index, slug="privateindices", label=RaceLabel.N4, category="privatizationok",
        description="Both loop indices privatized; element writes are disjoint.",
        variant=f"var{params.get('variant_idx', 0)}",
    )


def build_firstprivate_ok(b: CodeBuilder, index: int, params: Mapping[str, object]) -> Microbenchmark:
    """The seed value is firstprivate and only read."""
    n = int(params["n"])
    emit_main_prologue(b)
    b.line("  int i;")
    b.line(f"  int len = {n};")
    b.line(f"  int out[{n}];")
    b.line("  int offset = 10;")
    b.line("#pragma omp parallel for firstprivate(offset)")
    b.line("  for (i = 0; i < len; i++)")
    b.line("    out[i] = i + offset;")
    emit_main_epilogue(b)
    return b.build(
        index=index, slug="firstprivateok", label=RaceLabel.N4, category="privatizationok",
        description="Read-only seed value passed in through firstprivate.",
        variant=f"var{params.get('variant_idx', 0)}",
    )


def build_lastprivate_ok(b: CodeBuilder, index: int, params: Mapping[str, object]) -> Microbenchmark:
    """The sequentially-last value captured through lastprivate."""
    n = int(params["n"])
    emit_main_prologue(b)
    b.line("  int i;")
    b.line(f"  int len = {n};")
    b.line(f"  double a[{n}];")
    b.line("  double last_val = 0.0;")
    b.line("  for (i = 0; i < len; i++)")
    b.line("    a[i] = i * 0.5;")
    b.line("#pragma omp parallel for lastprivate(last_val)")
    b.line("  for (i = 0; i < len; i++)")
    b.line("    last_val = a[i];")
    b.line('  printf("last=%f\\n", last_val);')
    emit_main_epilogue(b)
    return b.build(
        index=index, slug="lastprivateok", label=RaceLabel.N4, category="privatizationok",
        description="Sequentially-last value captured with lastprivate.",
        variant=f"var{params.get('variant_idx', 0)}",
    )


def build_default_none(b: CodeBuilder, index: int, params: Mapping[str, object]) -> Microbenchmark:
    """``default(none)`` with every variable's sharing spelled out."""
    n = int(params["n"])
    emit_main_prologue(b)
    b.line("  int i;")
    b.line(f"  int len = {n};")
    b.line(f"  double a[{n}];")
    b.line("  double scale = 2.0;")
    b.line("  for (i = 0; i < len; i++)")
    b.line("    a[i] = i;")
    b.line("#pragma omp parallel for default(none) shared(a, len) firstprivate(scale) private(i)")
    b.line("  for (i = 0; i < len; i++)")
    b.line("    a[i] = a[i] * scale;")
    emit_main_epilogue(b)
    return b.build(
        index=index, slug="defaultnone", label=RaceLabel.N4, category="privatizationok",
        description="default(none) region with explicit data-sharing attributes.",
        variant=f"var{params.get('variant_idx', 0)}",
    )


def build_block_local_tmp(b: CodeBuilder, index: int, params: Mapping[str, object]) -> Microbenchmark:
    """The temporary is declared inside the loop body, so it is automatically private."""
    n = int(params["n"])
    emit_main_prologue(b)
    b.line("  int i;")
    b.line(f"  int len = {n};")
    b.line(f"  int a[{n}];")
    b.line(f"  int out[{n}];")
    b.line("  for (i = 0; i < len; i++)")
    b.line("    a[i] = i;")
    b.line("#pragma omp parallel for")
    b.line("  for (i = 0; i < len; i++)")
    b.line("  {")
    b.line("    int tmp = a[i] + 1;")
    b.line("    out[i] = tmp * 2;")
    b.line("  }")
    emit_main_epilogue(b)
    return b.build(
        index=index, slug="blocklocaltmp", label=RaceLabel.N4, category="privatizationok",
        description="Temporary declared inside the loop body; implicitly private.",
        variant=f"var{params.get('variant_idx', 0)}",
    )


PATTERNS = (
    # race-yes: 3 + 2 + 2 + 2 + 2 + 1 + 2 = 14
    PatternSpec("sharedtmp", RaceLabel.Y4, "privatization", build_shared_tmp,
                ({"n": 100}, {"n": 200}, {"n": 500})),
    PatternSpec("sharedtmp2d", RaceLabel.Y4, "privatization", build_shared_tmp_2d,
                ({"n": 16}, {"n": 32})),
    PatternSpec("sharedinneridx", RaceLabel.Y4, "privatization", build_shared_inner_index,
                ({"n": 16}, {"n": 32})),
    PatternSpec("firstprivatemissing", RaceLabel.Y4, "privatization", build_firstprivate_missing,
                ({"n": 100}, {"n": 200})),
    PatternSpec("lastprivatemissing", RaceLabel.Y4, "privatization", build_lastprivate_missing,
                ({"n": 100}, {"n": 200})),
    PatternSpec("sharedswap", RaceLabel.Y4, "privatization", build_shared_swap_tmp,
                ({"n": 100},)),
    PatternSpec("sharedscratch", RaceLabel.Y4, "privatization", build_shared_scratch_array,
                ({"n": 16}, {"n": 32})),
    # race-free: 3 + 2 + 2 + 2 + 2 + 1 + 2 = 14
    PatternSpec("privatetmp", RaceLabel.N4, "privatizationok", build_private_tmp,
                ({"n": 100}, {"n": 200}, {"n": 500})),
    PatternSpec("privatetmp2d", RaceLabel.N4, "privatizationok", build_private_tmp_2d,
                ({"n": 16}, {"n": 32})),
    PatternSpec("privateindices", RaceLabel.N4, "privatizationok", build_private_indices,
                ({"n": 16}, {"n": 32})),
    PatternSpec("firstprivateok", RaceLabel.N4, "privatizationok", build_firstprivate_ok,
                ({"n": 100}, {"n": 200})),
    PatternSpec("lastprivateok", RaceLabel.N4, "privatizationok", build_lastprivate_ok,
                ({"n": 100}, {"n": 200})),
    PatternSpec("defaultnone", RaceLabel.N4, "privatizationok", build_default_none,
                ({"n": 100},)),
    PatternSpec("blocklocaltmp", RaceLabel.N4, "privatizationok", build_block_local_tmp,
                ({"n": 100}, {"n": 200})),
)
