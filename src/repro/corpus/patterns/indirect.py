"""Family 7 — indirect and control-dependent access patterns (``Y7`` / ``N7``).

Race-yes kernels write through an index array with duplicate entries, through
a modulus that folds many iterations onto one element, or under a data
dependent condition without protection.  Race-free counterparts use
permutation index arrays, identity maps, disjoint strides or proper atomics.
"""

from __future__ import annotations

from typing import Mapping

from repro.corpus.builder import CodeBuilder
from repro.corpus.microbenchmark import Microbenchmark, RaceLabel
from repro.corpus.patterns.base import PatternSpec, emit_main_epilogue, emit_main_prologue

__all__ = ["PATTERNS"]


# ---------------------------------------------------------------------------
# race-yes builders
# ---------------------------------------------------------------------------


def build_indirect_duplicate_increment(b: CodeBuilder, index: int, params: Mapping[str, object]) -> Microbenchmark:
    """``a[idx[i]] += 1`` where the index array contains duplicates."""
    n = int(params["n"])
    emit_main_prologue(b)
    b.line("  int i;")
    b.line(f"  int len = {n};")
    b.line(f"  int a[{n}];")
    b.line(f"  int idx[{n}];")
    b.line("  for (i = 0; i < len; i++)")
    b.line("  {")
    b.line("    a[i] = 0;")
    b.line("    idx[i] = (i * 3) % (len / 2);")
    b.line("  }")
    b.line("#pragma omp parallel for")
    b.line("  for (i = 0; i < len; i++)")
    ln = b.line("    a[idx[i]] += 1;")
    write = b.access(ln, "a[idx[i]]", "W")
    read = b.access(ln, "a[idx[i]]", "R")
    b.pair(read, write)
    emit_main_epilogue(b)
    return b.build(
        index=index, slug="indirectdup", label=RaceLabel.Y7, category="indirect",
        description=(
            "The index array folds the iteration space onto half the elements, so\n"
            "different iterations update the same a[idx[i]] concurrently."
        ),
        variant=f"var{params.get('variant_idx', 0)}",
    )


def build_indirect_duplicate_store(b: CodeBuilder, index: int, params: Mapping[str, object]) -> Microbenchmark:
    """Plain stores through a duplicate-bearing index array (write/write race)."""
    n = int(params["n"])
    emit_main_prologue(b)
    b.line("  int i;")
    b.line(f"  int len = {n};")
    b.line(f"  int a[{n}];")
    b.line(f"  int idx[{n}];")
    b.line("  for (i = 0; i < len; i++)")
    b.line("    idx[i] = i / 2;")
    b.line("#pragma omp parallel for")
    b.line("  for (i = 0; i < len; i++)")
    ln = b.line("    a[idx[i]] = i;")
    w1 = b.access(ln, "a[idx[i]]", "W")
    w2 = b.access(ln, "a[idx[i]]", "W")
    b.pair(w1, w2)
    emit_main_epilogue(b)
    return b.build(
        index=index, slug="indirectstore", label=RaceLabel.Y7, category="indirect",
        description="Stores through idx[i] = i/2 collide pairwise on the same element.",
        variant=f"var{params.get('variant_idx', 0)}",
    )


def build_conditional_count(b: CodeBuilder, index: int, params: Mapping[str, object]) -> Microbenchmark:
    """Counting matches under a condition without atomic protection."""
    n = int(params["n"])
    emit_main_prologue(b)
    b.line("  int i;")
    b.line(f"  int len = {n};")
    b.line(f"  int data[{n}];")
    b.line("  int matches = 0;")
    b.line("  for (i = 0; i < len; i++)")
    b.line("    data[i] = i % 5;")
    b.line("#pragma omp parallel for")
    b.line("  for (i = 0; i < len; i++)")
    b.line("  {")
    b.line("    if (data[i] == 0)")
    ln = b.line("      matches = matches + 1;")
    write = b.access(ln, "matches", "W")
    read = b.access(ln, "matches", "R", occurrence=2)
    b.pair(read, write)
    b.line("  }")
    emit_main_epilogue(b)
    return b.build(
        index=index, slug="condcount", label=RaceLabel.Y7, category="indirect",
        description="Control-dependent increment of a shared counter without atomic.",
        variant=f"var{params.get('variant_idx', 0)}",
    )


def build_modulus_fold(b: CodeBuilder, index: int, params: Mapping[str, object]) -> Microbenchmark:
    """Writes folded onto a small ring buffer through ``i % 10``."""
    n = int(params["n"])
    emit_main_prologue(b)
    b.line("  int i;")
    b.line(f"  int len = {n};")
    b.line("  int ring[10];")
    b.line("#pragma omp parallel for")
    b.line("  for (i = 0; i < len; i++)")
    ln = b.line("    ring[i % 10] = i;")
    w1 = b.access(ln, "ring[i % 10]", "W")
    w2 = b.access(ln, "ring[i % 10]", "W")
    b.pair(w1, w2)
    emit_main_epilogue(b)
    return b.build(
        index=index, slug="modulusfold", label=RaceLabel.Y7, category="indirect",
        description="Many iterations write the same ring-buffer slot (i mod 10).",
        variant=f"var{params.get('variant_idx', 0)}",
    )


def build_halo_overlap(b: CodeBuilder, index: int, params: Mapping[str, object]) -> Microbenchmark:
    """Each iteration also updates a halo element a fixed offset away."""
    n = int(params["n"])
    offset = 16
    emit_main_prologue(b)
    b.line("  int i;")
    b.line(f"  int len = {n};")
    b.line(f"  int a[{n}];")
    b.line("  for (i = 0; i < len; i++)")
    b.line("    a[i] = i;")
    b.line("#pragma omp parallel for")
    b.line(f"  for (i = 0; i < len - {offset}; i++)")
    b.line("  {")
    ln1 = b.line("    a[i] = a[i] + 1;")
    w1 = b.access(ln1, "a[i]", "W")
    ln2 = b.line(f"    a[i + {offset}] = a[i] * 2;")
    w2 = b.access(ln2, f"a[i + {offset}]", "W")
    r2 = b.access(ln2, "a[i]", "R")
    b.pair(w2, w1)
    b.pair(r2, w2)
    b.line("  }")
    emit_main_epilogue(b)
    return b.build(
        index=index, slug="halooverlap", label=RaceLabel.Y7, category="indirect",
        description=(
            "Each iteration writes its own element and an element offset positions\n"
            "ahead, which another thread owns."
        ),
        variant=f"var{params.get('variant_idx', 0)}",
    )


def build_histogram_indirect(b: CodeBuilder, index: int, params: Mapping[str, object]) -> Microbenchmark:
    """Histogram where the bin comes from the data values (no protection)."""
    n = int(params["n"])
    emit_main_prologue(b)
    b.line("  int i;")
    b.line(f"  int len = {n};")
    b.line(f"  int values[{n}];")
    b.line("  int bins[16];")
    b.line("  for (i = 0; i < 16; i++)")
    b.line("    bins[i] = 0;")
    b.line("  for (i = 0; i < len; i++)")
    b.line("    values[i] = (i * 7) % 16;")
    b.line("#pragma omp parallel for")
    b.line("  for (i = 0; i < len; i++)")
    ln = b.line("    bins[values[i]] = bins[values[i]] + 1;")
    write = b.access(ln, "bins[values[i]]", "W")
    read = b.access(ln, "bins[values[i]]", "R", occurrence=2)
    b.pair(read, write)
    emit_main_epilogue(b)
    return b.build(
        index=index, slug="histindirect", label=RaceLabel.Y7, category="indirect",
        description="Value-indexed histogram bins updated without atomic protection.",
        variant=f"var{params.get('variant_idx', 0)}",
    )


# ---------------------------------------------------------------------------
# race-free builders
# ---------------------------------------------------------------------------


def build_indirect_permutation(b: CodeBuilder, index: int, params: Mapping[str, object]) -> Microbenchmark:
    """Stores through a permutation index array — all targets distinct."""
    n = int(params["n"])
    emit_main_prologue(b)
    b.line("  int i;")
    b.line(f"  int len = {n};")
    b.line(f"  int a[{n}];")
    b.line(f"  int perm[{n}];")
    b.line("  for (i = 0; i < len; i++)")
    b.line("    perm[i] = (len - 1) - i;")
    b.line("#pragma omp parallel for")
    b.line("  for (i = 0; i < len; i++)")
    b.line("    a[perm[i]] = i;")
    emit_main_epilogue(b)
    return b.build(
        index=index, slug="indirectperm", label=RaceLabel.N7, category="indirectok",
        description="Index array is a permutation (reversal); all stores are disjoint.",
        variant=f"var{params.get('variant_idx', 0)}",
    )


def build_indirect_identity(b: CodeBuilder, index: int, params: Mapping[str, object]) -> Microbenchmark:
    """Index array is the identity map."""
    n = int(params["n"])
    emit_main_prologue(b)
    b.line("  int i;")
    b.line(f"  int len = {n};")
    b.line(f"  int a[{n}];")
    b.line(f"  int idx[{n}];")
    b.line("  for (i = 0; i < len; i++)")
    b.line("    idx[i] = i;")
    b.line("#pragma omp parallel for")
    b.line("  for (i = 0; i < len; i++)")
    b.line("    a[idx[i]] = i * 3;")
    emit_main_epilogue(b)
    return b.build(
        index=index, slug="indirectidentity", label=RaceLabel.N7, category="indirectok",
        description="Identity index array; each iteration writes its own element.",
        variant=f"var{params.get('variant_idx', 0)}",
    )


def build_conditional_count_atomic(b: CodeBuilder, index: int, params: Mapping[str, object]) -> Microbenchmark:
    """Conditional counting protected by ``atomic``."""
    n = int(params["n"])
    emit_main_prologue(b)
    b.line("  int i;")
    b.line(f"  int len = {n};")
    b.line(f"  int data[{n}];")
    b.line("  int matches = 0;")
    b.line("  for (i = 0; i < len; i++)")
    b.line("    data[i] = i % 5;")
    b.line("#pragma omp parallel for")
    b.line("  for (i = 0; i < len; i++)")
    b.line("  {")
    b.line("    if (data[i] == 0)")
    b.line("    {")
    b.line("#pragma omp atomic")
    b.line("      matches += 1;")
    b.line("    }")
    b.line("  }")
    emit_main_epilogue(b)
    return b.build(
        index=index, slug="condcountatomic", label=RaceLabel.N7, category="indirectok",
        description="Control-dependent counter increment protected by atomic.",
        variant=f"var{params.get('variant_idx', 0)}",
    )


def build_modulus_critical(b: CodeBuilder, index: int, params: Mapping[str, object]) -> Microbenchmark:
    """Ring-buffer writes serialized with a critical region."""
    n = int(params["n"])
    emit_main_prologue(b)
    b.line("  int i;")
    b.line(f"  int len = {n};")
    b.line("  int ring[10];")
    b.line("#pragma omp parallel for")
    b.line("  for (i = 0; i < len; i++)")
    b.line("  {")
    b.line("#pragma omp critical")
    b.line("    ring[i % 10] = i;")
    b.line("  }")
    emit_main_epilogue(b)
    return b.build(
        index=index, slug="moduluscritical", label=RaceLabel.N7, category="indirectok",
        description="Folded ring-buffer writes serialized by a critical region.",
        variant=f"var{params.get('variant_idx', 0)}",
    )


def build_disjoint_strides(b: CodeBuilder, index: int, params: Mapping[str, object]) -> Microbenchmark:
    """Even and odd elements written by two separate parallel loops."""
    n = int(params["n"])
    emit_main_prologue(b)
    b.line("  int i;")
    b.line(f"  int len = {n};")
    b.line(f"  int a[{n}];")
    b.line("#pragma omp parallel for")
    b.line("  for (i = 0; i < len / 2; i++)")
    b.line("    a[2*i] = i;")
    b.line("#pragma omp parallel for")
    b.line("  for (i = 0; i < len / 2; i++)")
    b.line("    a[2*i + 1] = i;")
    emit_main_epilogue(b)
    return b.build(
        index=index, slug="disjointstrides", label=RaceLabel.N7, category="indirectok",
        description="Even and odd strided writes performed in separate parallel loops.",
        variant=f"var{params.get('variant_idx', 0)}",
    )


def build_gather_only(b: CodeBuilder, index: int, params: Mapping[str, object]) -> Microbenchmark:
    """Indirect reads (gather) with per-iteration private writes."""
    n = int(params["n"])
    emit_main_prologue(b)
    b.line("  int i;")
    b.line(f"  int len = {n};")
    b.line(f"  int src[{n}];")
    b.line(f"  int dst[{n}];")
    b.line(f"  int idx[{n}];")
    b.line("  for (i = 0; i < len; i++)")
    b.line("  {")
    b.line("    src[i] = i * 2;")
    b.line("    idx[i] = (i * 3) % len;")
    b.line("  }")
    b.line("#pragma omp parallel for")
    b.line("  for (i = 0; i < len; i++)")
    b.line("    dst[i] = src[idx[i]];")
    emit_main_epilogue(b)
    return b.build(
        index=index, slug="gatheronly", label=RaceLabel.N7, category="indirectok",
        description="Gather: indirect reads are shared but every write is disjoint.",
        variant=f"var{params.get('variant_idx', 0)}",
    )


def build_offset_no_overlap(b: CodeBuilder, index: int, params: Mapping[str, object]) -> Microbenchmark:
    """Offset writes land in a separate second half of the array."""
    n = int(params["n"])
    half = n // 2
    emit_main_prologue(b)
    b.line("  int i;")
    b.line(f"  int len = {n};")
    b.line(f"  int a[{n}];")
    b.line("  for (i = 0; i < len; i++)")
    b.line("    a[i] = 0;")
    b.line("#pragma omp parallel for")
    b.line(f"  for (i = 0; i < {half}; i++)")
    b.line(f"    a[i + {half}] = a[i] + 1;")
    emit_main_epilogue(b)
    return b.build(
        index=index, slug="offsetnooverlap", label=RaceLabel.N7, category="indirectok",
        description=(
            "Reads come from the first half and writes go to the second half; the\n"
            "offset equals the loop trip count so ranges never overlap."
        ),
        variant=f"var{params.get('variant_idx', 0)}",
    )


PATTERNS = (
    # race-yes: 2 + 2 + 2 + 2 + 2 + 2 = 12
    PatternSpec("indirectdup", RaceLabel.Y7, "indirect", build_indirect_duplicate_increment,
                ({"n": 100}, {"n": 200})),
    PatternSpec("indirectstore", RaceLabel.Y7, "indirect", build_indirect_duplicate_store,
                ({"n": 100}, {"n": 200})),
    PatternSpec("condcount", RaceLabel.Y7, "indirect", build_conditional_count,
                ({"n": 100}, {"n": 200})),
    PatternSpec("modulusfold", RaceLabel.Y7, "indirect", build_modulus_fold,
                ({"n": 100}, {"n": 200})),
    PatternSpec("halooverlap", RaceLabel.Y7, "indirect", build_halo_overlap,
                ({"n": 100}, {"n": 200})),
    PatternSpec("histindirect", RaceLabel.Y7, "indirect", build_histogram_indirect,
                ({"n": 100}, {"n": 200})),
    # race-free: 2 + 2 + 2 + 2 + 2 + 2 + 2 = 14
    PatternSpec("indirectperm", RaceLabel.N7, "indirectok", build_indirect_permutation,
                ({"n": 100}, {"n": 200})),
    PatternSpec("indirectidentity", RaceLabel.N7, "indirectok", build_indirect_identity,
                ({"n": 100}, {"n": 200})),
    PatternSpec("condcountatomic", RaceLabel.N7, "indirectok", build_conditional_count_atomic,
                ({"n": 100}, {"n": 200})),
    PatternSpec("moduluscritical", RaceLabel.N7, "indirectok", build_modulus_critical,
                ({"n": 100}, {"n": 200})),
    PatternSpec("disjointstrides", RaceLabel.N7, "indirectok", build_disjoint_strides,
                ({"n": 100}, {"n": 200})),
    PatternSpec("gatheronly", RaceLabel.N7, "indirectok", build_gather_only,
                ({"n": 100}, {"n": 200})),
    PatternSpec("offsetnooverlap", RaceLabel.N7, "indirectok", build_offset_no_overlap,
                ({"n": 100}, {"n": 200})),
)
