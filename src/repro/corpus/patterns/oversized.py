"""Oversized microbenchmarks that exceed the 4k-token prompt budget.

The paper keeps 198 of the 201 DRB-ML entries because three programs do not
fit the 4k-token input limit of the evaluated models (§3.2).  These three
generators produce deliberately long kernels (many unrolled stages) so the
token filter in :mod:`repro.dataset` excludes exactly them, reproducing the
198-program evaluation subset with the paper's 100/98 positive/negative
split.
"""

from __future__ import annotations

from typing import Mapping

from repro.corpus.builder import CodeBuilder
from repro.corpus.microbenchmark import Microbenchmark, RaceLabel
from repro.corpus.patterns.base import PatternSpec, emit_main_epilogue, emit_main_prologue

__all__ = ["PATTERNS"]

#: Number of unrolled pipeline stages; sized so the token count safely
#: exceeds the 4096-token budget used by the dataset subset filter.
_STAGES = 220


def build_long_pipeline_racy(b: CodeBuilder, index: int, params: Mapping[str, object]) -> Microbenchmark:
    """A long unrolled pipeline whose final stage carries an anti-dependence."""
    n = int(params.get("n", 100))
    emit_main_prologue(b)
    b.line("  int i;")
    b.line(f"  int len = {n};")
    b.line(f"  double stage_data[{n}];")
    b.line("  for (i = 0; i < len; i++)")
    b.line("    stage_data[i] = i * 0.5;")
    for stage in range(_STAGES):
        b.line(f"  /* pipeline stage {stage}: element-wise transform */")
        b.line("  for (i = 0; i < len; i++)")
        b.line(f"    stage_data[i] = stage_data[i] * 1.0 + {stage}.0;")
    b.line("#pragma omp parallel for")
    b.line("  for (i = 0; i < len - 1; i++)")
    ln = b.line("    stage_data[i] = stage_data[i+1] + 1.0;")
    write = b.access(ln, "stage_data[i]", "W")
    read = b.access(ln, "stage_data[i+1]", "R")
    b.pair(read, write)
    emit_main_epilogue(b)
    return b.build(
        index=index, slug="longpipelineracy", label=RaceLabel.Y1, category="oversized",
        description=(
            "A very long unrolled preprocessing pipeline followed by a parallel\n"
            "loop with a loop-carried anti-dependence.  Exceeds the 4k-token limit."
        ),
    )


def build_long_pipeline_counter(b: CodeBuilder, index: int, params: Mapping[str, object]) -> Microbenchmark:
    """A long unrolled kernel ending in an unsynchronized shared counter update."""
    n = int(params.get("n", 100))
    emit_main_prologue(b)
    b.line("  int i;")
    b.line(f"  int len = {n};")
    b.line(f"  double field_values[{n}];")
    b.line("  int touched = 0;")
    b.line("  for (i = 0; i < len; i++)")
    b.line("    field_values[i] = i * 0.25;")
    for stage in range(_STAGES):
        b.line(f"  /* smoothing sweep {stage} */")
        b.line("  for (i = 1; i < len - 1; i++)")
        b.line("    field_values[i] = (field_values[i-1] + field_values[i+1]) * 0.5;")
    b.line("#pragma omp parallel for")
    b.line("  for (i = 0; i < len; i++)")
    ln = b.line("    touched = touched + 1;")
    write = b.access(ln, "touched", "W")
    read = b.access(ln, "touched", "R", occurrence=2)
    b.pair(read, write)
    emit_main_epilogue(b)
    return b.build(
        index=index, slug="longpipelinecounter", label=RaceLabel.Y2, category="oversized",
        description=(
            "A very long sequential smoothing kernel followed by an unprotected\n"
            "shared counter update.  Exceeds the 4k-token limit."
        ),
    )


def build_long_pipeline_safe(b: CodeBuilder, index: int, params: Mapping[str, object]) -> Microbenchmark:
    """A long unrolled kernel whose final parallel loop is race free."""
    n = int(params.get("n", 100))
    emit_main_prologue(b)
    b.line("  int i;")
    b.line(f"  int len = {n};")
    b.line(f"  double samples[{n}];")
    b.line(f"  double outputs[{n}];")
    b.line("  for (i = 0; i < len; i++)")
    b.line("    samples[i] = i * 0.125;")
    for stage in range(_STAGES):
        b.line(f"  /* calibration pass {stage} */")
        b.line("  for (i = 0; i < len; i++)")
        b.line(f"    samples[i] = samples[i] + {stage}.0 * 0.001;")
    b.line("#pragma omp parallel for")
    b.line("  for (i = 0; i < len; i++)")
    b.line("    outputs[i] = samples[i] * 2.0;")
    emit_main_epilogue(b)
    return b.build(
        index=index, slug="longpipelinesafe", label=RaceLabel.N1, category="oversized",
        description=(
            "A very long sequential calibration kernel followed by an\n"
            "embarrassingly parallel output loop.  Exceeds the 4k-token limit."
        ),
    )


PATTERNS = (
    PatternSpec("longpipelineracy", RaceLabel.Y1, "oversized", build_long_pipeline_racy,
                ({"n": 100},)),
    PatternSpec("longpipelinecounter", RaceLabel.Y2, "oversized", build_long_pipeline_counter,
                ({"n": 100},)),
    PatternSpec("longpipelinesafe", RaceLabel.N1, "oversized", build_long_pipeline_safe,
                ({"n": 100},)),
)
