"""Family 2 — missing/correct synchronization patterns (labels ``Y2`` / ``N2``).

Race-yes kernels update shared state from multiple threads without a
``critical``/``atomic``/lock/barrier; the race-free counterparts use the
corresponding synchronization construct correctly.

Static-analyzer coverage (``repro analyze``): the racy kernels fire
``DRD-SHARED-SCALAR`` / ``DRD-WRITE-WRITE``; the race-free counterparts
are proved by ``DRD-MUTEX-CRITICAL`` / ``DRD-MUTEX-ATOMIC`` /
``DRD-MUTEX-LOCK`` / ``DRD-MUTEX-ORDERED`` and, for the barrier-phased
kernels, ``DRD-PHASE-ORDERED``.
"""

from __future__ import annotations

from typing import Mapping

from repro.corpus.builder import CodeBuilder
from repro.corpus.microbenchmark import Microbenchmark, RaceLabel
from repro.corpus.patterns.base import PatternSpec, emit_main_epilogue, emit_main_prologue

__all__ = ["PATTERNS"]


# ---------------------------------------------------------------------------
# race-yes builders
# ---------------------------------------------------------------------------


def build_counter_norace_protection(b: CodeBuilder, index: int, params: Mapping[str, object]) -> Microbenchmark:
    """Shared counter incremented inside ``parallel`` without any protection."""
    threads = int(params["threads"])
    emit_main_prologue(b)
    b.line("  int counter = 0;")
    b.line(f"#pragma omp parallel num_threads({threads})")
    b.line("  {")
    ln = b.line("    counter = counter + 1;")
    write = b.access(ln, "counter", "W")
    read = b.access(ln, "counter", "R", occurrence=2)
    b.pair(read, write)
    b.line("  }")
    b.line('  printf("counter=%d\\n", counter);')
    emit_main_epilogue(b)
    return b.build(
        index=index,
        slug="counterunsync",
        label=RaceLabel.Y2,
        category="missingsync",
        description=(
            "A shared counter is incremented by every thread of a parallel region\n"
            "without critical/atomic protection."
        ),
        variant=f"var{params.get('variant_idx', 0)}",
        num_threads=threads,
    )


def build_accumulate_in_for(b: CodeBuilder, index: int, params: Mapping[str, object]) -> Microbenchmark:
    """``count += 1`` inside a parallel for — unsynchronized read-modify-write."""
    n = int(params["n"])
    emit_main_prologue(b)
    b.line("  int i;")
    b.line(f"  int len = {n};")
    b.line("  int count = 0;")
    b.line("#pragma omp parallel for")
    b.line("  for (i = 0; i < len; i++)")
    ln = b.line("    count += 1;")
    write = b.access(ln, "count", "W")
    read = b.access(ln, "count", "R")
    b.pair(read, write)
    b.line('  printf("count=%d\\n", count);')
    emit_main_epilogue(b)
    return b.build(
        index=index,
        slug="countinfor",
        label=RaceLabel.Y2,
        category="missingsync",
        description="Compound increment of a shared counter inside a parallel for.",
        variant=f"var{params.get('variant_idx', 0)}",
    )


def build_lock_declared_unused(b: CodeBuilder, index: int, params: Mapping[str, object]) -> Microbenchmark:
    """A lock is initialised but never acquired around the shared update."""
    n = int(params["n"])
    emit_main_prologue(b)
    b.line("  int i;")
    b.line(f"  int len = {n};")
    b.line("  int total = 0;")
    b.line("  omp_lock_t lck;")
    b.line("  omp_init_lock(&lck);")
    b.line("#pragma omp parallel for")
    b.line("  for (i = 0; i < len; i++)")
    b.line("  {")
    ln = b.line("    total = total + i;")
    write = b.access(ln, "total", "W")
    read = b.access(ln, "total", "R", occurrence=2)
    b.pair(read, write)
    b.line("  }")
    b.line("  omp_destroy_lock(&lck);")
    b.line('  printf("total=%d\\n", total);')
    emit_main_epilogue(b)
    return b.build(
        index=index,
        slug="lockunused",
        label=RaceLabel.Y2,
        category="missingsync",
        description="A lock is initialised but never used; the shared update races.",
        variant=f"var{params.get('variant_idx', 0)}",
    )


def build_lock_partial(b: CodeBuilder, index: int, params: Mapping[str, object]) -> Microbenchmark:
    """The lock protects the write but a later read happens outside the lock."""
    threads = int(params["threads"])
    emit_main_prologue(b)
    b.line("  int shared_val = 0;")
    b.line("  int observed = 0;")
    b.line("  omp_lock_t lck;")
    b.line("  omp_init_lock(&lck);")
    b.line(f"#pragma omp parallel num_threads({threads})")
    b.line("  {")
    b.line("    omp_set_lock(&lck);")
    ln_w = b.line("    shared_val = shared_val + 1;")
    write = b.access(ln_w, "shared_val", "W")
    b.line("    omp_unset_lock(&lck);")
    ln_r = b.line("    observed = shared_val;")
    read = b.access(ln_r, "shared_val", "R")
    b.pair(read, write)
    b.line("  }")
    b.line("  omp_destroy_lock(&lck);")
    emit_main_epilogue(b)
    return b.build(
        index=index,
        slug="lockpartial",
        label=RaceLabel.Y2,
        category="missingsync",
        description=(
            "The increment of shared_val is lock protected but a later read of the\n"
            "same variable happens outside the lock, racing with other threads."
        ),
        variant=f"var{params.get('variant_idx', 0)}",
        num_threads=threads,
    )


def build_critical_partial(b: CodeBuilder, index: int, params: Mapping[str, object]) -> Microbenchmark:
    """Only one of two shared updates sits inside the critical region."""
    n = int(params["n"])
    emit_main_prologue(b)
    b.line("  int i;")
    b.line(f"  int len = {n};")
    b.line("  int sum_a = 0;")
    b.line("  int sum_b = 0;")
    b.line("#pragma omp parallel for")
    b.line("  for (i = 0; i < len; i++)")
    b.line("  {")
    b.line("#pragma omp critical")
    b.line("    sum_a = sum_a + i;")
    ln = b.line("    sum_b = sum_b + i;")
    write = b.access(ln, "sum_b", "W")
    read = b.access(ln, "sum_b", "R", occurrence=2)
    b.pair(read, write)
    b.line("  }")
    b.line('  printf("%d %d\\n", sum_a, sum_b);')
    emit_main_epilogue(b)
    return b.build(
        index=index,
        slug="criticalpartial",
        label=RaceLabel.Y2,
        category="missingsync",
        description=(
            "Two shared accumulators are updated, but only sum_a is inside a\n"
            "critical region; sum_b races."
        ),
        variant=f"var{params.get('variant_idx', 0)}",
    )


def build_missing_barrier(b: CodeBuilder, index: int, params: Mapping[str, object]) -> Microbenchmark:
    """Two worksharing phases with ``nowait`` and no barrier between them."""
    n = int(params["n"])
    emit_main_prologue(b)
    b.line("  int i;")
    b.line(f"  int len = {n};")
    b.line(f"  int a[{n}];")
    b.line(f"  int c[{n}];")
    b.line("  for (i = 0; i < len; i++)")
    b.line("    a[i] = i;")
    b.line("#pragma omp parallel")
    b.line("  {")
    b.line("#pragma omp for nowait")
    b.line("    for (i = 0; i < len; i++)")
    ln_w = b.line("      a[i] = i * 2;")
    write = b.access(ln_w, "a[i]", "W")
    b.line("#pragma omp for")
    b.line("    for (i = 0; i < len - 1; i++)")
    ln_r = b.line("      c[i] = a[i+1];")
    read = b.access(ln_r, "a[i+1]", "R")
    b.pair(read, write)
    b.line("  }")
    emit_main_epilogue(b)
    return b.build(
        index=index,
        slug="nowaitbarrier",
        label=RaceLabel.Y2,
        category="missingsync",
        description=(
            "The first worksharing loop carries nowait, so its writes to a[] race\n"
            "with the reads of the second loop in the same parallel region."
        ),
        variant=f"var{params.get('variant_idx', 0)}",
    )


def build_missing_atomic_max(b: CodeBuilder, index: int, params: Mapping[str, object]) -> Microbenchmark:
    """Finding the maximum with an unprotected compare-and-store."""
    n = int(params["n"])
    emit_main_prologue(b)
    b.line("  int i;")
    b.line(f"  int len = {n};")
    b.line(f"  int a[{n}];")
    b.line("  int maxval = 0;")
    b.line("  for (i = 0; i < len; i++)")
    b.line("    a[i] = (i * 7) % len;")
    b.line("#pragma omp parallel for")
    b.line("  for (i = 0; i < len; i++)")
    b.line("  {")
    b.line("    if (a[i] > maxval)")
    ln = b.line("      maxval = a[i];")
    write = b.access(ln, "maxval", "W")
    read = b.access(ln, "a[i]", "R")
    b.pair(read, write)
    b.line("  }")
    b.line('  printf("max=%d\\n", maxval);')
    emit_main_epilogue(b)
    return b.build(
        index=index,
        slug="maxnocritical",
        label=RaceLabel.Y2,
        category="missingsync",
        description="Unprotected compare-and-store while computing a maximum.",
        variant=f"var{params.get('variant_idx', 0)}",
    )


def build_init_without_single(b: CodeBuilder, index: int, params: Mapping[str, object]) -> Microbenchmark:
    """Every thread performs the shared initialisation meant for one thread."""
    threads = int(params["threads"])
    emit_main_prologue(b)
    b.line("  int init_flag = 0;")
    b.line("  int data = 0;")
    b.line(f"#pragma omp parallel num_threads({threads})")
    b.line("  {")
    ln_w = b.line("    init_flag = 1;")
    write = b.access(ln_w, "init_flag", "W")
    ln_w2 = b.line("    data = data + init_flag;")
    write2 = b.access(ln_w2, "data", "W")
    read2 = b.access(ln_w2, "data", "R", occurrence=2)
    b.pair(write, write)
    b.pair(read2, write2)
    b.line("  }")
    emit_main_epilogue(b)
    return b.build(
        index=index,
        slug="initnosingle",
        label=RaceLabel.Y2,
        category="missingsync",
        description=(
            "Initialisation intended for a single thread is executed by every\n"
            "thread; both init_flag and data race."
        ),
        variant=f"var{params.get('variant_idx', 0)}",
        num_threads=threads,
    )


def build_master_no_barrier(b: CodeBuilder, index: int, params: Mapping[str, object]) -> Microbenchmark:
    """``master`` writes a flag that the other threads read without a barrier."""
    threads = int(params["threads"])
    emit_main_prologue(b)
    b.line("  int flag = 0;")
    b.line("  int seen = 0;")
    b.line(f"#pragma omp parallel num_threads({threads})")
    b.line("  {")
    b.line("#pragma omp master")
    ln_w = b.line("    flag = 1;")
    write = b.access(ln_w, "flag", "W")
    ln_r = b.line("    seen = flag;")
    read = b.access(ln_r, "flag", "R")
    b.pair(read, write)
    b.line("  }")
    emit_main_epilogue(b)
    return b.build(
        index=index,
        slug="masternobarrier",
        label=RaceLabel.Y2,
        category="missingsync",
        description=(
            "The master thread writes flag while the other threads read it with no\n"
            "intervening barrier."
        ),
        variant=f"var{params.get('variant_idx', 0)}",
        num_threads=threads,
    )


# ---------------------------------------------------------------------------
# race-free builders
# ---------------------------------------------------------------------------


def build_counter_critical(b: CodeBuilder, index: int, params: Mapping[str, object]) -> Microbenchmark:
    """Critical-protected shared counter."""
    threads = int(params["threads"])
    emit_main_prologue(b)
    b.line("  int counter = 0;")
    b.line(f"#pragma omp parallel num_threads({threads})")
    b.line("  {")
    b.line("#pragma omp critical")
    b.line("    counter = counter + 1;")
    b.line("  }")
    b.line('  printf("counter=%d\\n", counter);')
    emit_main_epilogue(b)
    return b.build(
        index=index,
        slug="countercritical",
        label=RaceLabel.N2,
        category="syncok",
        description="Shared counter protected by a critical region.",
        variant=f"var{params.get('variant_idx', 0)}",
        num_threads=threads,
    )


def build_counter_atomic(b: CodeBuilder, index: int, params: Mapping[str, object]) -> Microbenchmark:
    """Atomic-protected shared counter."""
    threads = int(params["threads"])
    emit_main_prologue(b)
    b.line("  int counter = 0;")
    b.line(f"#pragma omp parallel num_threads({threads})")
    b.line("  {")
    b.line("#pragma omp atomic")
    b.line("    counter += 1;")
    b.line("  }")
    b.line('  printf("counter=%d\\n", counter);')
    emit_main_epilogue(b)
    return b.build(
        index=index,
        slug="counteratomic",
        label=RaceLabel.N2,
        category="syncok",
        description="Shared counter protected by an atomic update.",
        variant=f"var{params.get('variant_idx', 0)}",
        num_threads=threads,
    )


def build_counter_lock(b: CodeBuilder, index: int, params: Mapping[str, object]) -> Microbenchmark:
    """Lock-protected shared counter."""
    threads = int(params["threads"])
    emit_main_prologue(b)
    b.line("  int counter = 0;")
    b.line("  omp_lock_t lck;")
    b.line("  omp_init_lock(&lck);")
    b.line(f"#pragma omp parallel num_threads({threads})")
    b.line("  {")
    b.line("    omp_set_lock(&lck);")
    b.line("    counter = counter + 1;")
    b.line("    omp_unset_lock(&lck);")
    b.line("  }")
    b.line("  omp_destroy_lock(&lck);")
    b.line('  printf("counter=%d\\n", counter);')
    emit_main_epilogue(b)
    return b.build(
        index=index,
        slug="counterlock",
        label=RaceLabel.N2,
        category="syncok",
        description="Shared counter protected by an OpenMP lock.",
        variant=f"var{params.get('variant_idx', 0)}",
        num_threads=threads,
    )


def build_two_phase_barrier(b: CodeBuilder, index: int, params: Mapping[str, object]) -> Microbenchmark:
    """Write phase and read phase separated by the implicit barrier of ``omp for``."""
    n = int(params["n"])
    emit_main_prologue(b)
    b.line("  int i;")
    b.line(f"  int len = {n};")
    b.line(f"  int a[{n}];")
    b.line(f"  int c[{n}];")
    b.line("#pragma omp parallel")
    b.line("  {")
    b.line("#pragma omp for")
    b.line("    for (i = 0; i < len; i++)")
    b.line("      a[i] = i * 2;")
    b.line("#pragma omp for")
    b.line("    for (i = 0; i < len - 1; i++)")
    b.line("      c[i] = a[i+1];")
    b.line("  }")
    emit_main_epilogue(b)
    return b.build(
        index=index,
        slug="twophasebarrier",
        label=RaceLabel.N2,
        category="syncok",
        description=(
            "Two worksharing loops; the implicit barrier after the first one orders\n"
            "its writes before the reads of the second."
        ),
        variant=f"var{params.get('variant_idx', 0)}",
    )


def build_named_criticals(b: CodeBuilder, index: int, params: Mapping[str, object]) -> Microbenchmark:
    """Two counters protected by two differently named critical regions."""
    n = int(params["n"])
    emit_main_prologue(b)
    b.line("  int i;")
    b.line(f"  int len = {n};")
    b.line("  int evens = 0;")
    b.line("  int odds = 0;")
    b.line("#pragma omp parallel for")
    b.line("  for (i = 0; i < len; i++)")
    b.line("  {")
    b.line("    if (i % 2 == 0)")
    b.line("    {")
    b.line("#pragma omp critical (even_region)")
    b.line("      evens = evens + 1;")
    b.line("    }")
    b.line("    else")
    b.line("    {")
    b.line("#pragma omp critical (odd_region)")
    b.line("      odds = odds + 1;")
    b.line("    }")
    b.line("  }")
    emit_main_epilogue(b)
    return b.build(
        index=index,
        slug="namedcritical",
        label=RaceLabel.N2,
        category="syncok",
        description=(
            "Two disjoint counters protected by two differently named critical\n"
            "regions; no conflicting access shares a region."
        ),
        variant=f"var{params.get('variant_idx', 0)}",
    )


def build_atomic_capture(b: CodeBuilder, index: int, params: Mapping[str, object]) -> Microbenchmark:
    """Atomic capture used to hand out unique indices."""
    n = int(params["n"])
    emit_main_prologue(b)
    b.line("  int i;")
    b.line(f"  int len = {n};")
    b.line(f"  int slots[{n}];")
    b.line("  int next = 0;")
    b.line("#pragma omp parallel for")
    b.line("  for (i = 0; i < len; i++)")
    b.line("  {")
    b.line("    int my_slot;")
    b.line("#pragma omp atomic capture")
    b.line("    my_slot = next++;")
    b.line("    slots[my_slot] = i;")
    b.line("  }")
    emit_main_epilogue(b)
    return b.build(
        index=index,
        slug="atomiccapture",
        label=RaceLabel.N2,
        category="syncok",
        description="Atomic capture hands out unique slot indices; writes are disjoint.",
        variant=f"var{params.get('variant_idx', 0)}",
    )


def build_single_init(b: CodeBuilder, index: int, params: Mapping[str, object]) -> Microbenchmark:
    """Shared initialisation done inside ``single`` (implicit barrier follows)."""
    threads = int(params["threads"])
    emit_main_prologue(b)
    b.line("  int data = 0;")
    b.line("  int consumed = 0;")
    b.line(f"#pragma omp parallel num_threads({threads})")
    b.line("  {")
    b.line("#pragma omp single")
    b.line("    data = 42;")
    b.line("#pragma omp critical")
    b.line("    consumed = consumed + data;")
    b.line("  }")
    emit_main_epilogue(b)
    return b.build(
        index=index,
        slug="singleinit",
        label=RaceLabel.N2,
        category="syncok",
        description=(
            "One thread initialises data inside single; the implicit barrier makes\n"
            "the later critical-protected reads race free."
        ),
        variant=f"var{params.get('variant_idx', 0)}",
        num_threads=threads,
    )


def build_master_with_barrier(b: CodeBuilder, index: int, params: Mapping[str, object]) -> Microbenchmark:
    """``master`` write followed by an explicit barrier before the reads."""
    threads = int(params["threads"])
    emit_main_prologue(b)
    b.line("  int flag = 0;")
    b.line("  int seen = 0;")
    b.line(f"#pragma omp parallel num_threads({threads})")
    b.line("  {")
    b.line("#pragma omp master")
    b.line("    flag = 1;")
    b.line("#pragma omp barrier")
    b.line("#pragma omp critical")
    b.line("    seen = seen + flag;")
    b.line("  }")
    emit_main_epilogue(b)
    return b.build(
        index=index,
        slug="masterbarrier",
        label=RaceLabel.N2,
        category="syncok",
        description="Master write ordered before the worker reads by an explicit barrier.",
        variant=f"var{params.get('variant_idx', 0)}",
        num_threads=threads,
    )


def build_ordered_loop(b: CodeBuilder, index: int, params: Mapping[str, object]) -> Microbenchmark:
    """Loop-carried update serialized through the ``ordered`` construct."""
    n = int(params["n"])
    emit_main_prologue(b)
    b.line("  int i;")
    b.line(f"  int len = {n};")
    b.line(f"  int a[{n}];")
    b.line("  a[0] = 0;")
    b.line("#pragma omp parallel for ordered")
    b.line("  for (i = 1; i < len; i++)")
    b.line("  {")
    b.line("#pragma omp ordered")
    b.line("    a[i] = a[i-1] + 1;")
    b.line("  }")
    emit_main_epilogue(b)
    return b.build(
        index=index,
        slug="orderedloop",
        label=RaceLabel.N2,
        category="syncok",
        description=(
            "The loop-carried update executes inside an ordered construct, which\n"
            "serializes it in iteration order."
        ),
        variant=f"var{params.get('variant_idx', 0)}",
    )


PATTERNS = (
    # race-yes: 3 + 2 + 2 + 2 + 2 + 2 + 2 + 2 + 1 = 18
    PatternSpec(
        slug="counterunsync",
        label=RaceLabel.Y2,
        category="missingsync",
        builder=build_counter_norace_protection,
        variants=({"threads": 2}, {"threads": 4}, {"threads": 8}),
    ),
    PatternSpec(
        slug="countinfor",
        label=RaceLabel.Y2,
        category="missingsync",
        builder=build_accumulate_in_for,
        variants=({"n": 100}, {"n": 200}),
    ),
    PatternSpec(
        slug="lockunused",
        label=RaceLabel.Y2,
        category="missingsync",
        builder=build_lock_declared_unused,
        variants=({"n": 100}, {"n": 200}),
    ),
    PatternSpec(
        slug="lockpartial",
        label=RaceLabel.Y2,
        category="missingsync",
        builder=build_lock_partial,
        variants=({"threads": 2}, {"threads": 4}),
    ),
    PatternSpec(
        slug="criticalpartial",
        label=RaceLabel.Y2,
        category="missingsync",
        builder=build_critical_partial,
        variants=({"n": 100}, {"n": 200}),
    ),
    PatternSpec(
        slug="nowaitbarrier",
        label=RaceLabel.Y2,
        category="missingsync",
        builder=build_missing_barrier,
        variants=({"n": 100}, {"n": 200}),
    ),
    PatternSpec(
        slug="maxnocritical",
        label=RaceLabel.Y2,
        category="missingsync",
        builder=build_missing_atomic_max,
        variants=({"n": 100}, {"n": 200}),
    ),
    PatternSpec(
        slug="initnosingle",
        label=RaceLabel.Y2,
        category="missingsync",
        builder=build_init_without_single,
        variants=({"threads": 2}, {"threads": 4}),
    ),
    PatternSpec(
        slug="masternobarrier",
        label=RaceLabel.Y2,
        category="missingsync",
        builder=build_master_no_barrier,
        variants=({"threads": 4},),
    ),
    # race-free: 3 + 2 + 2 + 2 + 2 + 1 + 2 + 1 + 2 = 17
    PatternSpec(
        slug="countercritical",
        label=RaceLabel.N2,
        category="syncok",
        builder=build_counter_critical,
        variants=({"threads": 2}, {"threads": 4}, {"threads": 8}),
    ),
    PatternSpec(
        slug="counteratomic",
        label=RaceLabel.N2,
        category="syncok",
        builder=build_counter_atomic,
        variants=({"threads": 2}, {"threads": 4}),
    ),
    PatternSpec(
        slug="counterlock",
        label=RaceLabel.N2,
        category="syncok",
        builder=build_counter_lock,
        variants=({"threads": 2}, {"threads": 4}),
    ),
    PatternSpec(
        slug="twophasebarrier",
        label=RaceLabel.N2,
        category="syncok",
        builder=build_two_phase_barrier,
        variants=({"n": 100}, {"n": 200}),
    ),
    PatternSpec(
        slug="namedcritical",
        label=RaceLabel.N2,
        category="syncok",
        builder=build_named_criticals,
        variants=({"n": 100}, {"n": 200}),
    ),
    PatternSpec(
        slug="atomiccapture",
        label=RaceLabel.N2,
        category="syncok",
        builder=build_atomic_capture,
        variants=({"n": 100},),
    ),
    PatternSpec(
        slug="singleinit",
        label=RaceLabel.N2,
        category="syncok",
        builder=build_single_init,
        variants=({"threads": 2}, {"threads": 4}),
    ),
    PatternSpec(
        slug="masterbarrier",
        label=RaceLabel.N2,
        category="syncok",
        builder=build_master_with_barrier,
        variants=({"threads": 4},),
    ),
    PatternSpec(
        slug="orderedloop",
        label=RaceLabel.N2,
        category="syncok",
        builder=build_ordered_loop,
        variants=({"n": 100}, {"n": 200}),
    ),
)
