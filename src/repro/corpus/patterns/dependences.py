"""Family 1 — loop-carried dependence patterns (labels ``Y1`` / ``N1``).

The race-yes patterns parallelize loops that carry anti-, true- or output
dependences (the classic DRB ``antidep1-orig-yes`` kernel reproduced in the
paper's Listing 1 belongs here).  The race-free counterparts are
embarrassingly parallel kernels with no conflicting accesses.
"""

from __future__ import annotations

from typing import Mapping

from repro.corpus.builder import CodeBuilder
from repro.corpus.microbenchmark import Microbenchmark, RaceLabel
from repro.corpus.patterns.base import PatternSpec, emit_main_epilogue, emit_main_prologue

__all__ = ["PATTERNS"]


# ---------------------------------------------------------------------------
# race-yes builders
# ---------------------------------------------------------------------------


def build_antidep1(b: CodeBuilder, index: int, params: Mapping[str, object]) -> Microbenchmark:
    """``a[i] = a[i+1] + 1`` under ``parallel for`` — loop-carried anti-dependence."""
    n = int(params["n"])
    emit_main_prologue(b)
    b.line("  int i;")
    b.line(f"  int len = {n};")
    b.line(f"  int a[{n}];")
    b.line("  for (i = 0; i < len; i++)")
    b.line("    a[i] = i;")
    b.line("#pragma omp parallel for")
    b.line("  for (i = 0; i < len - 1; i++)")
    ln = b.line("    a[i] = a[i+1] + 1;")
    write = b.access(ln, "a[i]", "W")
    read = b.access(ln, "a[i+1]", "R")
    b.pair(read, write)
    b.line('  printf("a[50]=%d\\n", a[50]);')
    emit_main_epilogue(b)
    return b.build(
        index=index,
        slug="antidep1",
        label=RaceLabel.Y1,
        category="antidep",
        description=(
            "A loop with loop-carried anti-dependence.\n"
            "The read of a[i+1] conflicts with the write of a[i] performed by"
            " a neighbouring iteration."
        ),
        variant="orig" if params.get("variant_idx", 0) == 0 else f"var{params['variant_idx']}",
    )


def build_antidep2(b: CodeBuilder, index: int, params: Mapping[str, object]) -> Microbenchmark:
    """2-D loop nest with an anti-dependence carried by the parallelized outer loop."""
    n = int(params["n"])
    emit_main_prologue(b)
    b.line("  int i, j;")
    b.line(f"  int n = {n};")
    b.line(f"  float u[{n}][{n}];")
    b.line("  for (i = 0; i < n; i++)")
    b.line("    for (j = 0; j < n; j++)")
    b.line("      u[i][j] = 0.5;")
    b.line("#pragma omp parallel for private(j)")
    b.line("  for (i = 0; i < n - 1; i++)")
    b.line("    for (j = 0; j < n; j++)")
    ln = b.line("      u[i][j] = u[i+1][j] + 1.0;")
    write = b.access(ln, "u[i][j]", "W")
    read = b.access(ln, "u[i+1][j]", "R")
    b.pair(read, write)
    emit_main_epilogue(b)
    return b.build(
        index=index,
        slug="antidep2",
        label=RaceLabel.Y1,
        category="antidep",
        description=(
            "Two-dimensional loop nest with an anti-dependence carried by the\n"
            "parallelized outer loop over the first array dimension."
        ),
        variant=f"var{params.get('variant_idx', 0)}",
    )


def build_truedep1(b: CodeBuilder, index: int, params: Mapping[str, object]) -> Microbenchmark:
    """``a[i] = a[i-1] + 1`` — true (flow) dependence carried by the parallel loop."""
    n = int(params["n"])
    emit_main_prologue(b)
    b.line("  int i;")
    b.line(f"  int len = {n};")
    b.line(f"  int a[{n}];")
    b.line("  for (i = 0; i < len; i++)")
    b.line("    a[i] = i;")
    b.line("#pragma omp parallel for")
    b.line("  for (i = 1; i < len; i++)")
    ln = b.line("    a[i] = a[i-1] + 1;")
    write = b.access(ln, "a[i]", "W")
    read = b.access(ln, "a[i-1]", "R")
    b.pair(read, write)
    b.line('  printf("a[10]=%d\\n", a[10]);')
    emit_main_epilogue(b)
    return b.build(
        index=index,
        slug="truedep1",
        label=RaceLabel.Y1,
        category="truedep",
        description="A loop with a loop-carried true dependence on array a.",
        variant=f"var{params.get('variant_idx', 0)}",
    )


def build_truedep_stride(b: CodeBuilder, index: int, params: Mapping[str, object]) -> Microbenchmark:
    """True dependence at distance 2 — still a race once the loop is parallel."""
    n = int(params["n"])
    emit_main_prologue(b)
    b.line("  int i;")
    b.line(f"  int len = {n};")
    b.line(f"  double a[{n}];")
    b.line("  for (i = 0; i < len; i++)")
    b.line("    a[i] = 1.0;")
    b.line("#pragma omp parallel for")
    b.line("  for (i = 2; i < len; i++)")
    ln = b.line("    a[i] = a[i-2] * 0.5;")
    write = b.access(ln, "a[i]", "W")
    read = b.access(ln, "a[i-2]", "R")
    b.pair(read, write)
    emit_main_epilogue(b)
    return b.build(
        index=index,
        slug="truedepdist2",
        label=RaceLabel.Y1,
        category="truedep",
        description="Loop-carried true dependence with dependence distance 2.",
        variant=f"var{params.get('variant_idx', 0)}",
    )


def build_outputdep(b: CodeBuilder, index: int, params: Mapping[str, object]) -> Microbenchmark:
    """Every iteration also writes ``a[0]`` — a write/write (output) race."""
    n = int(params["n"])
    emit_main_prologue(b)
    b.line("  int i;")
    b.line(f"  int len = {n};")
    b.line(f"  int a[{n}];")
    b.line("#pragma omp parallel for")
    b.line("  for (i = 0; i < len; i++)")
    b.line("  {")
    b.line("    a[i] = i;")
    ln = b.line("    a[0] = len;")
    first = b.access(ln, "a[0]", "W")
    second = b.access(ln, "a[0]", "W")
    b.pair(first, second)
    b.line("  }")
    b.line('  printf("a[0]=%d\\n", a[0]);')
    emit_main_epilogue(b)
    return b.build(
        index=index,
        slug="outputdep",
        label=RaceLabel.Y1,
        category="outputdep",
        description=(
            "Output dependence: every iteration of the parallel loop writes a[0],\n"
            "so two threads race on the same element."
        ),
        variant=f"var{params.get('variant_idx', 0)}",
    )


def build_truedep_2d(b: CodeBuilder, index: int, params: Mapping[str, object]) -> Microbenchmark:
    """Inner-dimension true dependence while the inner loop is the parallel one."""
    n = int(params["n"])
    emit_main_prologue(b)
    b.line("  int i, j;")
    b.line(f"  int n = {n};")
    b.line(f"  double b[{n}][{n}];")
    b.line("  for (i = 0; i < n; i++)")
    b.line("    for (j = 0; j < n; j++)")
    b.line("      b[i][j] = 1.0;")
    b.line("  for (i = 0; i < n; i++)")
    b.line("#pragma omp parallel for")
    b.line("    for (j = 1; j < n; j++)")
    ln = b.line("      b[i][j] = b[i][j-1] * 2.0;")
    write = b.access(ln, "b[i][j]", "W")
    read = b.access(ln, "b[i][j-1]", "R")
    b.pair(read, write)
    emit_main_epilogue(b)
    return b.build(
        index=index,
        slug="truedep2d",
        label=RaceLabel.Y1,
        category="truedep",
        description=(
            "Second-dimension true dependence; the inner loop that carries the\n"
            "dependence is the one annotated with parallel for."
        ),
        variant=f"var{params.get('variant_idx', 0)}",
    )


def build_wavefront(b: CodeBuilder, index: int, params: Mapping[str, object]) -> Microbenchmark:
    """Three-point stencil updated in place — reads both neighbours it races with."""
    n = int(params["n"])
    emit_main_prologue(b)
    b.line("  int i;")
    b.line(f"  int len = {n};")
    b.line(f"  double a[{n}];")
    b.line("  for (i = 0; i < len; i++)")
    b.line("    a[i] = i * 0.5;")
    b.line("#pragma omp parallel for")
    b.line("  for (i = 1; i < len - 1; i++)")
    ln = b.line("    a[i] = a[i-1] + a[i+1];")
    write = b.access(ln, "a[i]", "W")
    read_left = b.access(ln, "a[i-1]", "R")
    read_right = b.access(ln, "a[i+1]", "R")
    b.pair(read_left, write)
    b.pair(read_right, write)
    emit_main_epilogue(b)
    return b.build(
        index=index,
        slug="wavefront",
        label=RaceLabel.Y1,
        category="truedep",
        description=(
            "In-place three-point stencil: the write of a[i] conflicts with the\n"
            "neighbour reads a[i-1] and a[i+1] of adjacent iterations."
        ),
        variant=f"var{params.get('variant_idx', 0)}",
    )


def build_scalar_carried(b: CodeBuilder, index: int, params: Mapping[str, object]) -> Microbenchmark:
    """A scalar carried across iterations couples neighbouring array writes."""
    n = int(params["n"])
    emit_main_prologue(b)
    b.line("  int i;")
    b.line(f"  int len = {n};")
    b.line(f"  int a[{n}];")
    b.line("  int x = 0;")
    b.line("  for (i = 0; i < len; i++)")
    b.line("    a[i] = i;")
    b.line("#pragma omp parallel for")
    b.line("  for (i = 0; i < len - 1; i++)")
    b.line("  {")
    ln_read = b.line("    x = a[i];")
    read = b.access(ln_read, "a[i]", "R")
    write_x = b.access(ln_read, "x", "W")
    ln_write = b.line("    a[i+1] = x + 1;")
    write = b.access(ln_write, "a[i+1]", "W")
    read_x = b.access(ln_write, "x", "R")
    b.pair(read, write)
    b.pair(write_x, read_x)
    b.line("  }")
    emit_main_epilogue(b)
    return b.build(
        index=index,
        slug="scalarcarried",
        label=RaceLabel.Y1,
        category="truedep",
        description=(
            "The shared scalar x carries a value between iterations, and the write\n"
            "to a[i+1] conflicts with the read of a[i] in the next iteration."
        ),
        variant=f"var{params.get('variant_idx', 0)}",
    )


def build_antidep_offset4(b: CodeBuilder, index: int, params: Mapping[str, object]) -> Microbenchmark:
    """Anti-dependence at distance 4 — races once chunks overlap the offset."""
    n = int(params["n"])
    emit_main_prologue(b)
    b.line("  int i;")
    b.line(f"  int len = {n};")
    b.line(f"  int a[{n}];")
    b.line("  for (i = 0; i < len; i++)")
    b.line("    a[i] = i;")
    b.line("#pragma omp parallel for")
    b.line("  for (i = 0; i < len - 4; i++)")
    ln = b.line("    a[i] = a[i+4] + 1;")
    write = b.access(ln, "a[i]", "W")
    read = b.access(ln, "a[i+4]", "R")
    b.pair(read, write)
    emit_main_epilogue(b)
    return b.build(
        index=index,
        slug="antidep4",
        label=RaceLabel.Y1,
        category="antidep",
        description="Loop-carried anti-dependence with dependence distance 4.",
        variant=f"var{params.get('variant_idx', 0)}",
    )


# ---------------------------------------------------------------------------
# race-free builders
# ---------------------------------------------------------------------------


def build_vecadd(b: CodeBuilder, index: int, params: Mapping[str, object]) -> Microbenchmark:
    """Element-wise vector addition — no conflicting accesses."""
    n = int(params["n"])
    emit_main_prologue(b)
    b.line("  int i;")
    b.line(f"  int len = {n};")
    b.line(f"  double a[{n}];")
    b.line(f"  double c[{n}];")
    b.line(f"  double d[{n}];")
    b.line("  for (i = 0; i < len; i++)")
    b.line("  {")
    b.line("    c[i] = i * 1.0;")
    b.line("    d[i] = i * 2.0;")
    b.line("  }")
    b.line("#pragma omp parallel for")
    b.line("  for (i = 0; i < len; i++)")
    b.line("    a[i] = c[i] + d[i];")
    b.line('  printf("a[0]=%f\\n", a[0]);')
    emit_main_epilogue(b)
    return b.build(
        index=index,
        slug="vecadd",
        label=RaceLabel.N1,
        category="noracebase",
        description="Embarrassingly parallel vector addition, no data race.",
        variant=f"var{params.get('variant_idx', 0)}",
    )


def build_init_loop(b: CodeBuilder, index: int, params: Mapping[str, object]) -> Microbenchmark:
    """Each iteration writes a distinct element."""
    n = int(params["n"])
    emit_main_prologue(b)
    b.line("  int i;")
    b.line(f"  int len = {n};")
    b.line(f"  int a[{n}];")
    b.line("#pragma omp parallel for")
    b.line("  for (i = 0; i < len; i++)")
    b.line("    a[i] = i * 2;")
    b.line('  printf("a[1]=%d\\n", a[1]);')
    emit_main_epilogue(b)
    return b.build(
        index=index,
        slug="initloop",
        label=RaceLabel.N1,
        category="noracebase",
        description="Parallel initialization; each iteration touches its own element.",
        variant=f"var{params.get('variant_idx', 0)}",
    )


def build_stencil_outofplace(b: CodeBuilder, index: int, params: Mapping[str, object]) -> Microbenchmark:
    """Out-of-place stencil: reads from one array, writes to another."""
    n = int(params["n"])
    emit_main_prologue(b)
    b.line("  int i;")
    b.line(f"  int len = {n};")
    b.line(f"  double in[{n}];")
    b.line(f"  double out[{n}];")
    b.line("  for (i = 0; i < len; i++)")
    b.line("    in[i] = i * 0.25;")
    b.line("#pragma omp parallel for")
    b.line("  for (i = 1; i < len - 1; i++)")
    b.line("    out[i] = in[i-1] + in[i+1];")
    emit_main_epilogue(b)
    return b.build(
        index=index,
        slug="stencilcopy",
        label=RaceLabel.N1,
        category="noracebase",
        description="Out-of-place stencil; reads and writes touch different arrays.",
        variant=f"var{params.get('variant_idx', 0)}",
    )


def build_independent_2d(b: CodeBuilder, index: int, params: Mapping[str, object]) -> Microbenchmark:
    """2-D element-wise scaling with both loop indices private."""
    n = int(params["n"])
    emit_main_prologue(b)
    b.line("  int i, j;")
    b.line(f"  int n = {n};")
    b.line(f"  double m[{n}][{n}];")
    b.line("  for (i = 0; i < n; i++)")
    b.line("    for (j = 0; j < n; j++)")
    b.line("      m[i][j] = i + j;")
    b.line("#pragma omp parallel for private(j)")
    b.line("  for (i = 0; i < n; i++)")
    b.line("    for (j = 0; j < n; j++)")
    b.line("      m[i][j] = m[i][j] * 2.0;")
    emit_main_epilogue(b)
    return b.build(
        index=index,
        slug="scale2d",
        label=RaceLabel.N1,
        category="noracebase",
        description="Element-wise 2-D update; every (i, j) pair is written once.",
        variant=f"var{params.get('variant_idx', 0)}",
    )


def build_saxpy(b: CodeBuilder, index: int, params: Mapping[str, object]) -> Microbenchmark:
    """SAXPY — the in-place update only touches the iteration's own element."""
    n = int(params["n"])
    emit_main_prologue(b)
    b.line("  int i;")
    b.line(f"  int len = {n};")
    b.line("  double alpha = 0.5;")
    b.line(f"  double x[{n}];")
    b.line(f"  double y[{n}];")
    b.line("  for (i = 0; i < len; i++)")
    b.line("  {")
    b.line("    x[i] = i * 1.0;")
    b.line("    y[i] = i * 3.0;")
    b.line("  }")
    b.line("#pragma omp parallel for")
    b.line("  for (i = 0; i < len; i++)")
    b.line("    y[i] = alpha * x[i] + y[i];")
    emit_main_epilogue(b)
    return b.build(
        index=index,
        slug="saxpy",
        label=RaceLabel.N1,
        category="noracebase",
        description="SAXPY kernel; in-place but element-wise independent.",
        variant=f"var{params.get('variant_idx', 0)}",
    )


def build_matvec(b: CodeBuilder, index: int, params: Mapping[str, object]) -> Microbenchmark:
    """Row-parallel matrix-vector product with a per-row local accumulator."""
    n = int(params["n"])
    emit_main_prologue(b)
    b.line("  int i, j;")
    b.line(f"  int n = {n};")
    b.line(f"  double mat[{n}][{n}];")
    b.line(f"  double v[{n}];")
    b.line(f"  double out[{n}];")
    b.line("  for (i = 0; i < n; i++)")
    b.line("  {")
    b.line("    v[i] = 1.0;")
    b.line("    for (j = 0; j < n; j++)")
    b.line("      mat[i][j] = i * 0.25 + j;")
    b.line("  }")
    b.line("#pragma omp parallel for private(j)")
    b.line("  for (i = 0; i < n; i++)")
    b.line("  {")
    b.line("    double rowsum = 0.0;")
    b.line("    for (j = 0; j < n; j++)")
    b.line("      rowsum = rowsum + mat[i][j] * v[j];")
    b.line("    out[i] = rowsum;")
    b.line("  }")
    emit_main_epilogue(b)
    return b.build(
        index=index,
        slug="matvec",
        label=RaceLabel.N1,
        category="noracebase",
        description="Row-parallel matrix-vector product with a block-local accumulator.",
        variant=f"var{params.get('variant_idx', 0)}",
    )


def build_triangular(b: CodeBuilder, index: int, params: Mapping[str, object]) -> Microbenchmark:
    """Triangular iteration space, still element-wise independent."""
    n = int(params["n"])
    emit_main_prologue(b)
    b.line("  int i, j;")
    b.line(f"  int n = {n};")
    b.line(f"  int t[{n}][{n}];")
    b.line("#pragma omp parallel for private(j)")
    b.line("  for (i = 0; i < n; i++)")
    b.line("    for (j = 0; j <= i; j++)")
    b.line("      t[i][j] = i - j;")
    emit_main_epilogue(b)
    return b.build(
        index=index,
        slug="triangular",
        label=RaceLabel.N1,
        category="noracebase",
        description="Triangular loop nest; iterations write disjoint elements.",
        variant=f"var{params.get('variant_idx', 0)}",
    )


def build_square_inplace(b: CodeBuilder, index: int, params: Mapping[str, object]) -> Microbenchmark:
    """In-place element-wise square — same element read and written per iteration."""
    n = int(params["n"])
    emit_main_prologue(b)
    b.line("  int i;")
    b.line(f"  int len = {n};")
    b.line(f"  double a[{n}];")
    b.line("  for (i = 0; i < len; i++)")
    b.line("    a[i] = i * 0.1;")
    b.line("#pragma omp parallel for")
    b.line("  for (i = 0; i < len; i++)")
    b.line("    a[i] = a[i] * a[i];")
    emit_main_epilogue(b)
    return b.build(
        index=index,
        slug="squareinplace",
        label=RaceLabel.N1,
        category="noracebase",
        description="Element-wise in-place square; no cross-iteration conflicts.",
        variant=f"var{params.get('variant_idx', 0)}",
    )


# ---------------------------------------------------------------------------
# pattern registry for this family
# ---------------------------------------------------------------------------

PATTERNS = (
    # race-yes: 4 + 2 + 3 + 2 + 2 + 2 + 2 + 1 + 2 = 20
    PatternSpec(
        slug="antidep1",
        label=RaceLabel.Y1,
        category="antidep",
        builder=build_antidep1,
        variants=({"n": 100}, {"n": 200}, {"n": 500}, {"n": 1000}),
    ),
    PatternSpec(
        slug="antidep2",
        label=RaceLabel.Y1,
        category="antidep",
        builder=build_antidep2,
        variants=({"n": 32}, {"n": 64}),
    ),
    PatternSpec(
        slug="truedep1",
        label=RaceLabel.Y1,
        category="truedep",
        builder=build_truedep1,
        variants=({"n": 100}, {"n": 200}, {"n": 500}),
    ),
    PatternSpec(
        slug="truedepdist2",
        label=RaceLabel.Y1,
        category="truedep",
        builder=build_truedep_stride,
        variants=({"n": 100}, {"n": 200}),
    ),
    PatternSpec(
        slug="outputdep",
        label=RaceLabel.Y1,
        category="outputdep",
        builder=build_outputdep,
        variants=({"n": 100}, {"n": 200}),
    ),
    PatternSpec(
        slug="truedep2d",
        label=RaceLabel.Y1,
        category="truedep",
        builder=build_truedep_2d,
        variants=({"n": 16}, {"n": 32}),
    ),
    PatternSpec(
        slug="wavefront",
        label=RaceLabel.Y1,
        category="truedep",
        builder=build_wavefront,
        variants=({"n": 100}, {"n": 200}),
    ),
    PatternSpec(
        slug="scalarcarried",
        label=RaceLabel.Y1,
        category="truedep",
        builder=build_scalar_carried,
        variants=({"n": 100},),
    ),
    PatternSpec(
        slug="antidep4",
        label=RaceLabel.Y1,
        category="antidep",
        builder=build_antidep_offset4,
        variants=({"n": 100}, {"n": 200}),
    ),
    # race-free: 3 + 2 + 2 + 2 + 2 + 2 + 1 + 2 = 16
    PatternSpec(
        slug="vecadd",
        label=RaceLabel.N1,
        category="noracebase",
        builder=build_vecadd,
        variants=({"n": 100}, {"n": 200}, {"n": 500}),
    ),
    PatternSpec(
        slug="initloop",
        label=RaceLabel.N1,
        category="noracebase",
        builder=build_init_loop,
        variants=({"n": 100}, {"n": 200}),
    ),
    PatternSpec(
        slug="stencilcopy",
        label=RaceLabel.N1,
        category="noracebase",
        builder=build_stencil_outofplace,
        variants=({"n": 100}, {"n": 200}),
    ),
    PatternSpec(
        slug="scale2d",
        label=RaceLabel.N1,
        category="noracebase",
        builder=build_independent_2d,
        variants=({"n": 16}, {"n": 32}),
    ),
    PatternSpec(
        slug="saxpy",
        label=RaceLabel.N1,
        category="noracebase",
        builder=build_saxpy,
        variants=({"n": 100}, {"n": 200}),
    ),
    PatternSpec(
        slug="matvec",
        label=RaceLabel.N1,
        category="noracebase",
        builder=build_matvec,
        variants=({"n": 16}, {"n": 32}),
    ),
    PatternSpec(
        slug="triangular",
        label=RaceLabel.N1,
        category="noracebase",
        builder=build_triangular,
        variants=({"n": 32},),
    ),
    PatternSpec(
        slug="squareinplace",
        label=RaceLabel.N1,
        category="noracebase",
        builder=build_square_inplace,
        variants=({"n": 100}, {"n": 200}),
    ),
)
