"""Deterministic construction of the 201-program corpus.

The corpus layout mirrors DataRaceBench v1.4.1 at the level the paper's
pipeline cares about:

* 201 microbenchmarks overall;
* three of them exceed the 4k-token prompt budget and are dropped by the
  DRB-ML subset filter, leaving 198;
* the remaining subset holds 100 race-yes and 98 race-free programs
  (≈50.5 % positive), matching the stratified-fold arithmetic of §3.5.

The generator instantiates every (pattern, variant) combination from
:data:`repro.corpus.patterns.ALL_PATTERNS` in a deterministic, seed-shuffled
order so that race-yes and race-free kernels interleave the way a curated
benchmark suite would, rather than being grouped by family.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.corpus.microbenchmark import Microbenchmark
from repro.corpus.patterns import ALL_PATTERNS, PatternSpec

__all__ = ["CorpusConfig", "build_corpus", "EXPECTED_TOTAL", "EXPECTED_RACE_YES"]

#: Corpus-level invariants checked by :func:`build_corpus`.
EXPECTED_TOTAL = 201
EXPECTED_RACE_YES = 102  # two of which are oversized and filtered from the subset


@dataclass(frozen=True)
class CorpusConfig:
    """Configuration of the corpus build.

    Attributes
    ----------
    seed:
        Seed for the deterministic shuffle that interleaves pattern families.
    shuffle:
        When ``False`` the corpus keeps family order (useful for debugging).
    validate:
        When ``True`` (default) the builder asserts the corpus-level counts
        that the rest of the pipeline depends on.
    """

    seed: int = 20231112  # SC-W 2023 started on November 12, 2023
    shuffle: bool = True
    validate: bool = True


def _enumerate_instances() -> List[Tuple[PatternSpec, int]]:
    """Return every (pattern, variant index) combination in family order."""
    out: List[Tuple[PatternSpec, int]] = []
    for spec in ALL_PATTERNS:
        for variant_idx in range(len(spec.variants)):
            out.append((spec, variant_idx))
    return out


def build_corpus(config: CorpusConfig | None = None) -> List[Microbenchmark]:
    """Build the full 201-program corpus.

    The returned list is ordered by benchmark index (1-based, contiguous).
    The mapping from (pattern, variant) to index is fully determined by
    ``config.seed``, so two builds with the same configuration are identical.
    """
    config = config or CorpusConfig()
    instances = _enumerate_instances()
    if config.shuffle:
        rng = random.Random(config.seed)
        rng.shuffle(instances)

    corpus: List[Microbenchmark] = []
    for position, (spec, variant_idx) in enumerate(instances, start=1):
        corpus.append(spec.instantiate(position, variant_idx))

    if config.validate:
        _validate_corpus(corpus)
    return corpus


def _validate_corpus(corpus: Sequence[Microbenchmark]) -> None:
    """Check the corpus-level invariants the experiments rely on."""
    if len(corpus) != EXPECTED_TOTAL:
        raise AssertionError(
            f"corpus has {len(corpus)} programs, expected {EXPECTED_TOTAL}; "
            "a pattern module's variant counts are out of sync"
        )
    yes = sum(1 for bench in corpus if bench.has_race)
    if yes != EXPECTED_RACE_YES:
        raise AssertionError(
            f"corpus has {yes} race-yes programs, expected {EXPECTED_RACE_YES}"
        )
    indices = [bench.index for bench in corpus]
    if indices != list(range(1, EXPECTED_TOTAL + 1)):
        raise AssertionError("benchmark indices must be contiguous and 1-based")
    names = {bench.name for bench in corpus}
    if len(names) != len(corpus):
        raise AssertionError("benchmark names must be unique")
