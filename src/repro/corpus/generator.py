"""Deterministic construction of the 201-program corpus.

The corpus layout mirrors DataRaceBench v1.4.1 at the level the paper's
pipeline cares about:

* 201 microbenchmarks overall;
* three of them exceed the 4k-token prompt budget and are dropped by the
  DRB-ML subset filter, leaving 198;
* the remaining subset holds 100 race-yes and 98 race-free programs
  (≈50.5 % positive), matching the stratified-fold arithmetic of §3.5.

The generator instantiates every (pattern, variant) combination from
:data:`repro.corpus.patterns.ALL_PATTERNS` in a deterministic, seed-shuffled
order so that race-yes and race-free kernels interleave the way a curated
benchmark suite would, rather than being grouped by family.

Streaming and scale-out
-----------------------

The corpus is also available as a *lazy producer*: :func:`iter_corpus`
yields benchmarks one at a time without ever materialising the list, and
:func:`iter_corpus_sharded` generates position spans in worker processes
(bounded look-ahead, results re-assembled in position order) so corpus
construction scales across cores.  ``CorpusConfig.repeats`` replicates the
201-program suite ``N`` times — every repeat block is re-interleaved with a
block-derived seed and benchmark indices stay contiguous and 1-based across
blocks, so a 10⁵+-record workload is just ``CorpusConfig(repeats=500)``.
``build_corpus`` is now a thin ``list(iter_corpus(...))`` wrapper: for
``repeats=1`` the streamed and materialised corpora are byte-identical.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

from repro.corpus.microbenchmark import Microbenchmark
from repro.corpus.patterns import ALL_PATTERNS, PatternSpec

__all__ = [
    "CorpusConfig",
    "build_corpus",
    "corpus_size",
    "iter_corpus",
    "iter_corpus_span",
    "iter_corpus_sharded",
    "EXPECTED_TOTAL",
    "EXPECTED_RACE_YES",
]

#: Corpus-level invariants checked by :func:`build_corpus` (per repeat block).
EXPECTED_TOTAL = 201
EXPECTED_RACE_YES = 102  # two of which are oversized and filtered from the subset

#: Odd multiplier (2**32 / golden ratio) deriving per-block shuffle seeds.
_BLOCK_SEED_STRIDE = 0x9E3779B1


@dataclass(frozen=True)
class CorpusConfig:
    """Configuration of the corpus build.

    Attributes
    ----------
    seed:
        Seed for the deterministic shuffle that interleaves pattern families.
    shuffle:
        When ``False`` the corpus keeps family order (useful for debugging).
    validate:
        When ``True`` (default) the builder asserts the corpus-level counts
        that the rest of the pipeline depends on.
    repeats:
        Number of 201-program repeat blocks (scale-out knob).  Block 0 uses
        ``seed`` directly — identical to the historical single-block corpus —
        and block ``b`` shuffles with a seed derived from ``(seed, b)``, so
        blocks interleave differently while staying fully deterministic.
        Benchmark indices (and therefore names) stay unique across blocks.
    """

    seed: int = 20231112  # SC-W 2023 started on November 12, 2023
    shuffle: bool = True
    validate: bool = True
    repeats: int = 1

    def __post_init__(self) -> None:
        if self.repeats < 1:
            raise ValueError(f"repeats must be >= 1, got {self.repeats}")


def _block_seed(seed: int, block: int) -> int:
    """Shuffle seed for repeat block ``block`` (block 0 == ``seed``)."""
    return seed + _BLOCK_SEED_STRIDE * block


def _enumerate_instances() -> List[Tuple[PatternSpec, int]]:
    """Return every (pattern, variant index) combination in family order."""
    out: List[Tuple[PatternSpec, int]] = []
    for spec in ALL_PATTERNS:
        for variant_idx in range(len(spec.variants)):
            out.append((spec, variant_idx))
    return out


def corpus_size(config: CorpusConfig | None = None) -> int:
    """Total number of benchmarks the configuration generates."""
    config = config or CorpusConfig()
    return len(_enumerate_instances()) * config.repeats


def iter_corpus(config: CorpusConfig | None = None) -> Iterator[Microbenchmark]:
    """Lazily yield the corpus in benchmark-index order.

    Peak residency is one repeat block of (pattern, variant) references plus
    the single benchmark being yielded — O(1) in corpus size.  For
    ``repeats=1`` the stream equals ``build_corpus`` element for element.
    """
    config = config or CorpusConfig()
    return iter_corpus_span(config, 1, corpus_size(config) + 1)


def iter_corpus_span(
    config: CorpusConfig, start: int, stop: int
) -> Iterator[Microbenchmark]:
    """Lazily yield benchmarks with 1-based index in ``[start, stop)``.

    Any span can be generated independently (only the repeat blocks it
    overlaps are shuffled), which is what lets :func:`iter_corpus_sharded`
    hand disjoint spans to worker processes and still produce a stream
    identical to :func:`iter_corpus`.
    """
    instances = _enumerate_instances()
    block_len = len(instances)
    total = block_len * config.repeats
    start = max(start, 1)
    stop = min(stop, total + 1)
    if start >= stop:
        return
    first_block = (start - 1) // block_len
    last_block = (stop - 2) // block_len
    for block in range(first_block, last_block + 1):
        ordered = list(instances)
        if config.shuffle:
            random.Random(_block_seed(config.seed, block)).shuffle(ordered)
        base = block * block_len  # positions base+1 .. base+block_len
        lo = max(start, base + 1)
        hi = min(stop, base + block_len + 1)
        for offset in range(lo - base - 1, hi - base - 1):
            spec, variant_idx = ordered[offset]
            yield spec.instantiate(base + offset + 1, variant_idx)


def _instantiate_span(payload: Tuple[CorpusConfig, int, int]) -> List[Microbenchmark]:
    """Worker for :func:`iter_corpus_sharded` (module level: picklable)."""
    config, start, stop = payload
    return list(iter_corpus_span(config, start, stop))


def iter_corpus_sharded(
    config: CorpusConfig | None = None,
    *,
    jobs: int = 2,
    shard_size: int | None = None,
) -> Iterator[Microbenchmark]:
    """Yield the corpus in index order, generating shards in worker processes.

    The producer keeps at most ``jobs + 1`` shards in flight (bounded
    look-ahead), so peak residency is O(``jobs × shard_size``) benchmarks
    regardless of corpus size.  The resulting stream is element-identical to
    :func:`iter_corpus` for the same configuration.
    """
    config = config or CorpusConfig()
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    total = corpus_size(config)
    if shard_size is None:
        shard_size = len(_enumerate_instances())  # one repeat block per shard
    if shard_size < 1:
        raise ValueError(f"shard_size must be >= 1, got {shard_size}")
    if jobs == 1 or total <= shard_size:
        yield from iter_corpus(config)
        return

    import concurrent.futures
    from collections import deque

    spans = iter(
        (config, lo, min(lo + shard_size, total + 1))
        for lo in range(1, total + 1, shard_size)
    )
    with concurrent.futures.ProcessPoolExecutor(max_workers=jobs) as pool:
        pending: "deque" = deque()
        for payload in spans:
            pending.append(pool.submit(_instantiate_span, payload))
            if len(pending) > jobs:
                break
        while pending:
            yield from pending.popleft().result()
            payload = next(spans, None)
            if payload is not None:
                pending.append(pool.submit(_instantiate_span, payload))


def build_corpus(config: CorpusConfig | None = None) -> List[Microbenchmark]:
    """Build the full corpus as a list (201 programs per repeat block).

    The returned list is ordered by benchmark index (1-based, contiguous).
    The mapping from (pattern, variant) to index is fully determined by
    ``config.seed``, so two builds with the same configuration are identical.
    """
    config = config or CorpusConfig()
    corpus = list(iter_corpus(config))
    if config.validate:
        _validate_corpus(corpus, repeats=config.repeats)
    return corpus


def _validate_corpus(corpus: Sequence[Microbenchmark], repeats: int = 1) -> None:
    """Check the corpus-level invariants the experiments rely on."""
    if len(corpus) != EXPECTED_TOTAL * repeats:
        raise AssertionError(
            f"corpus has {len(corpus)} programs, expected {EXPECTED_TOTAL * repeats}; "
            "a pattern module's variant counts are out of sync"
        )
    yes = sum(1 for bench in corpus if bench.has_race)
    if yes != EXPECTED_RACE_YES * repeats:
        raise AssertionError(
            f"corpus has {yes} race-yes programs, expected {EXPECTED_RACE_YES * repeats}"
        )
    indices = [bench.index for bench in corpus]
    if indices != list(range(1, EXPECTED_TOTAL * repeats + 1)):
        raise AssertionError("benchmark indices must be contiguous and 1-based")
    names = {bench.name for bench in corpus}
    if len(names) != len(corpus):
        raise AssertionError("benchmark names must be unique")
