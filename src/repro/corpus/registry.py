"""Indexed access to a built corpus.

:class:`CorpusRegistry` wraps the list returned by
:func:`repro.corpus.generator.build_corpus` with lookups by index, name and
category, plus the summary statistics used by reports and examples.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, Iterator, List, Optional, Sequence

from repro.corpus.generator import CorpusConfig, build_corpus
from repro.corpus.microbenchmark import Microbenchmark

__all__ = ["CorpusRegistry"]


class CorpusRegistry:
    """Lookup and statistics over a corpus of microbenchmarks."""

    def __init__(self, benchmarks: Sequence[Microbenchmark]) -> None:
        self._benchmarks: List[Microbenchmark] = list(benchmarks)
        self._by_index: Dict[int, Microbenchmark] = {}
        self._by_name: Dict[str, Microbenchmark] = {}
        for bench in self._benchmarks:
            if bench.index in self._by_index:
                raise ValueError(f"duplicate benchmark index {bench.index}")
            if bench.name in self._by_name:
                raise ValueError(f"duplicate benchmark name {bench.name}")
            self._by_index[bench.index] = bench
            self._by_name[bench.name] = bench

    # -- construction -------------------------------------------------------------

    @classmethod
    def build(cls, config: Optional[CorpusConfig] = None) -> "CorpusRegistry":
        """Build the default corpus and wrap it in a registry."""
        return cls(build_corpus(config))

    # -- container protocol -------------------------------------------------------

    def __len__(self) -> int:
        return len(self._benchmarks)

    def __iter__(self) -> Iterator[Microbenchmark]:
        return iter(self._benchmarks)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    # -- lookups ------------------------------------------------------------------

    @property
    def benchmarks(self) -> List[Microbenchmark]:
        """The benchmarks in index order."""
        return list(self._benchmarks)

    def by_index(self, index: int) -> Microbenchmark:
        """Return the benchmark with the given 1-based index."""
        return self._by_index[index]

    def by_name(self, name: str) -> Microbenchmark:
        """Return the benchmark with the given DRB-style file name."""
        return self._by_name[name]

    def by_category(self, category: str) -> List[Microbenchmark]:
        """Return every benchmark in a pattern category."""
        return [b for b in self._benchmarks if b.category == category]

    def race_yes(self) -> List[Microbenchmark]:
        """All benchmarks that contain a data race."""
        return [b for b in self._benchmarks if b.has_race]

    def race_free(self) -> List[Microbenchmark]:
        """All benchmarks without a data race."""
        return [b for b in self._benchmarks if not b.has_race]

    # -- statistics ---------------------------------------------------------------

    def category_counts(self) -> Dict[str, int]:
        """Number of benchmarks per category."""
        return dict(Counter(b.category for b in self._benchmarks))

    def label_counts(self) -> Dict[str, int]:
        """Number of benchmarks per DRB label (``Y1`` ... ``N7``)."""
        return dict(Counter(b.label.value for b in self._benchmarks))

    def positive_fraction(self) -> float:
        """Fraction of race-yes benchmarks (the paper reports ≈50.5 %)."""
        if not self._benchmarks:
            return 0.0
        return len(self.race_yes()) / len(self._benchmarks)

    def summary(self) -> str:
        """Multi-line human-readable summary used by examples and reports."""
        lines = [
            f"corpus: {len(self)} microbenchmarks "
            f"({len(self.race_yes())} race-yes / {len(self.race_free())} race-free)",
            f"positive fraction: {self.positive_fraction():.3f}",
            "per-category counts:",
        ]
        for category, count in sorted(self.category_counts().items()):
            lines.append(f"  {category:<16s} {count}")
        return "\n".join(lines)

    def subset(self, names: Iterable[str]) -> "CorpusRegistry":
        """Return a new registry restricted to the given benchmark names."""
        wanted = set(names)
        return CorpusRegistry([b for b in self._benchmarks if b.name in wanted])
