"""Microbenchmark records and ground-truth race-pair descriptions.

A :class:`Microbenchmark` is the unit the whole pipeline operates on: the
DRB-ML dataset builder scrapes its header comment, the static and dynamic
detectors parse its code, the simulated language models receive its trimmed
code inside prompts, and the evaluation harness scores predictions against
its :class:`RacePair` ground truth.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

__all__ = ["RaceLabel", "AccessSpec", "RacePair", "Microbenchmark"]


class RaceLabel(str, enum.Enum):
    """DataRaceBench label taxonomy.

    DRB distinguishes several flavours of "yes" (``Y1``–``Y7``: e.g.
    unresolvable dependences, missing synchronization, SIMD races) and "no"
    (``N1``–``N7``).  We keep the same coarse structure: the letter encodes
    the binary label, the digit the pattern family the generator used.
    """

    Y1 = "Y1"  # loop-carried data dependence
    Y2 = "Y2"  # missing synchronization (critical/atomic/lock)
    Y3 = "Y3"  # broken reduction / shared accumulator
    Y4 = "Y4"  # privatization missing (shared temporary)
    Y5 = "Y5"  # SIMD / vectorization race
    Y6 = "Y6"  # tasking / sections race
    Y7 = "Y7"  # indirect or control-dependent access race
    N1 = "N1"  # embarrassingly parallel, no conflicting accesses
    N2 = "N2"  # properly synchronized (critical/atomic/lock/barrier)
    N3 = "N3"  # correct reduction clause
    N4 = "N4"  # correct privatization (private/firstprivate/lastprivate)
    N5 = "N5"  # SIMD-safe kernel
    N6 = "N6"  # tasking / sections correctly ordered
    N7 = "N7"  # disjoint indirect accesses

    @property
    def has_race(self) -> bool:
        """True for the ``Y*`` labels."""
        return self.value.startswith("Y")

    @property
    def family(self) -> int:
        """The pattern-family digit (1-7)."""
        return int(self.value[1])


@dataclass(frozen=True)
class AccessSpec:
    """One memory access participating in a data race.

    Mirrors the per-variable fields of the DRB-ML ``var_pairs`` entries
    (paper Table 1): textual variable expression, 1-based line and column in
    the *original* (commented) source, and the operation (``"R"`` or ``"W"``).
    """

    name: str
    line: int
    col: int
    operation: str

    def __post_init__(self) -> None:
        if self.operation not in ("R", "W"):
            raise ValueError(f"operation must be 'R' or 'W', got {self.operation!r}")
        if self.line < 1 or self.col < 1:
            raise ValueError("line and col are 1-based and must be >= 1")

    @property
    def base_name(self) -> str:
        """The underlying variable name without subscripts (``a[i+1]`` → ``a``)."""
        return self.name.split("[", 1)[0].strip()

    def shifted(self, delta_lines: int) -> "AccessSpec":
        """Return a copy with the line number shifted by ``delta_lines``."""
        return AccessSpec(
            name=self.name,
            line=self.line + delta_lines,
            col=self.col,
            operation=self.operation,
        )

    def drb_comment_form(self) -> str:
        """Render in the DRB header-comment form ``name@line:col:OP``."""
        return f"{self.name}@{self.line}:{self.col}:{self.operation}"


@dataclass(frozen=True)
class RacePair:
    """A pair of conflicting accesses forming a data race.

    The DRB convention lists the *dependent* access first; we preserve the
    order the generator reports, and the matching logic in
    :mod:`repro.eval.matching` treats pairs as unordered.
    """

    first: AccessSpec
    second: AccessSpec

    def __post_init__(self) -> None:
        if self.first.operation == "R" and self.second.operation == "R":
            raise ValueError("a race pair needs at least one write access")

    def base_names(self) -> Tuple[str, str]:
        return (self.first.base_name, self.second.base_name)

    def shifted(self, delta_lines: int) -> "RacePair":
        return RacePair(self.first.shifted(delta_lines), self.second.shifted(delta_lines))

    def drb_comment_form(self) -> str:
        """Render the DRB header-comment line for this pair."""
        return (
            f"Data race pair: {self.first.drb_comment_form()} vs. "
            f"{self.second.drb_comment_form()}"
        )


@dataclass
class Microbenchmark:
    """One DataRaceBench-style microbenchmark.

    Attributes
    ----------
    index:
        1-based position in the corpus (DRB ``ID``).
    name:
        File name in the DRB convention
        ``DRB{index:03d}-{slug}-{orig|var}-{yes|no}.c``.
    code:
        Full C source *including* the DRB header comment.
    label:
        :class:`RaceLabel` describing race presence and pattern family.
    race_pairs:
        Ground-truth conflicting access pairs (empty for race-free kernels).
        Line/column positions refer to ``code`` (the commented source), just
        like DRB's own header comments; the DRB-ML pipeline re-maps them onto
        the trimmed code.
    category:
        Human-readable pattern family name (``"antidep"``, ``"reduction"``,
        ...), used for stratified reporting and corpus statistics.
    description:
        One-line description, embedded in the header comment.
    num_threads:
        Thread count the kernel is intended to run with (used by the dynamic
        detector's interpreter).
    """

    index: int
    name: str
    code: str
    label: RaceLabel
    race_pairs: List[RacePair] = field(default_factory=list)
    category: str = ""
    description: str = ""
    num_threads: int = 4

    def __post_init__(self) -> None:
        if self.label.has_race and not self.race_pairs:
            raise ValueError(f"{self.name}: race-yes benchmark must list race pairs")
        if not self.label.has_race and self.race_pairs:
            raise ValueError(f"{self.name}: race-free benchmark must not list race pairs")
        if self.index < 1:
            raise ValueError("index is 1-based")

    @property
    def has_race(self) -> bool:
        return self.label.has_race

    @property
    def drb_id(self) -> str:
        """Zero-padded DRB-style identifier (``"001"``)."""
        return f"{self.index:03d}"

    def code_without_header(self) -> str:
        """Return the code with the leading header comment removed.

        This is *not* the DRB-ML ``trimmed_code`` (which removes every
        comment and re-maps line numbers); it is a convenience for analyses
        that only want to skip the label block.
        """
        lines = self.code.splitlines(keepends=True)
        out: List[str] = []
        in_header = False
        header_done = False
        for line in lines:
            stripped = line.strip()
            if not header_done and not in_header and stripped.startswith("/*"):
                in_header = True
                if stripped.endswith("*/") and len(stripped) > 3:
                    in_header = False
                    header_done = True
                continue
            if in_header:
                if stripped.endswith("*/"):
                    in_header = False
                    header_done = True
                continue
            out.append(line)
        return "".join(out)

    def summary(self) -> str:
        """Short human-readable description used in logs and examples."""
        race = "race" if self.has_race else "no race"
        return f"{self.name} [{self.category}] ({race}, label {self.label.value})"
