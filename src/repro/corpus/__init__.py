"""DataRaceBench-style OpenMP microbenchmark corpus.

DataRaceBench v1.4.1 (Liao et al., SC'17) ships 201 OpenMP C/C++
microbenchmarks, roughly half with a seeded data race and half race-free,
each labelled in a header comment (including, for racy kernels, the
``Data race pair: a[i+1]@64:10:R vs. a[i]@64:5:W`` line giving the variable
pair, source location and read/write operation).

The original suite cannot be downloaded in this offline environment, so this
package *generates* an equivalent corpus: 201 microbenchmarks across the DRB
pattern taxonomy (loop-carried anti/output/true dependences, missing
``critical``/``atomic``/``barrier``, broken reductions, privatization
mistakes, indirect accesses, SIMD, tasking, sections, plus race-free
counterparts of each family), in the same header-comment label format, with
programmatically known ground truth.

Public entry points
-------------------
``build_corpus(config)``
    Deterministically build the full suite as a list of
    :class:`~repro.corpus.microbenchmark.Microbenchmark`.
``iter_corpus(config)`` / ``iter_corpus_sharded(config, jobs=...)``
    The same suite as a lazy stream (optionally generated span-by-span in
    worker processes) — ``CorpusConfig(repeats=N)`` replicates the suite
    with re-interleaved repeat blocks for scale-out workloads.
``CorpusRegistry``
    Indexed access by id, name and category.
"""

from repro.corpus.microbenchmark import AccessSpec, Microbenchmark, RaceLabel, RacePair
from repro.corpus.builder import CodeBuilder
from repro.corpus.generator import (
    CorpusConfig,
    build_corpus,
    corpus_size,
    iter_corpus,
    iter_corpus_sharded,
    iter_corpus_span,
)
from repro.corpus.registry import CorpusRegistry

__all__ = [
    "AccessSpec",
    "Microbenchmark",
    "RaceLabel",
    "RacePair",
    "CodeBuilder",
    "CorpusConfig",
    "build_corpus",
    "corpus_size",
    "iter_corpus",
    "iter_corpus_sharded",
    "iter_corpus_span",
    "CorpusRegistry",
]
